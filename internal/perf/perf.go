// Package perf is the simulator's benchmark harness: it measures wall time
// and allocation rates of simulation cells, persists them as a
// machine-readable baseline (BENCH_*.json), renders them in Go's standard
// benchmark format so benchstat can compare two baselines, and diffs a fresh
// measurement against a committed baseline with tolerances.
//
// Allocation counts are deterministic for this simulator (the hot path is
// allocation-free by construction, and the remaining allocations depend only
// on the workload), so alloc regressions are compared on every run. Wall
// time depends on the machine, so time regressions are only checked when the
// caller opts in (e.g. a CI runner benchmarking against a baseline produced
// on the same hardware class).
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// SchemaVersion identifies the baseline file layout.
const SchemaVersion = 1

// Benchmark is one measured cell.
type Benchmark struct {
	// Name is the cell identifier, e.g. "run/atax/SHM". The Go-bench
	// rendering prefixes it with "Benchmark".
	Name string `json:"name"`
	// Iterations is how many times the cell body ran.
	Iterations int `json:"iterations"`
	// NsPerOp is wall nanoseconds per iteration.
	NsPerOp int64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per iteration.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per iteration.
	BytesPerOp int64 `json:"bytes_per_op"`
}

// Baseline is one benchmark session: environment, total sweep wall time,
// and the per-cell measurements.
type Baseline struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	// NumCPU and GOMAXPROCS describe the machine the numbers were taken
	// on; wall times from a 1-CPU runner and a 16-core workstation are
	// not comparable, so the baseline states which it was. (Both are
	// omitted from pre-existing files; 0 means "not recorded".)
	NumCPU     int `json:"num_cpu,omitempty"`
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// Quick records whether the scaled-down configuration was used.
	Quick bool `json:"quick"`
	// TotalWallNs is the wall time of the whole sweep, including cells.
	TotalWallNs int64 `json:"total_wall_ns"`
	// Shards records the parallel shard count the sweep's "shards=N" cells
	// were measured with (0 when only sequential cells were measured).
	Shards     int         `json:"shards,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// New returns a Baseline stamped with the current environment.
func New(quick bool) *Baseline {
	return &Baseline{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         quick,
	}
}

// Measure runs fn iters times and returns the cell measurement. A GC runs
// before the timed region so prior garbage is not attributed to the cell;
// allocation counts come from the runtime's monotonic malloc counters.
func Measure(name string, iters int, fn func()) Benchmark {
	if iters <= 0 {
		iters = 1
	}
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	startMallocs, startBytes := ms.Mallocs, ms.TotalAlloc
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	n := int64(iters)
	return Benchmark{
		Name:        name,
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(ms.Mallocs-startMallocs) / n,
		BytesPerOp:  int64(ms.TotalAlloc-startBytes) / n,
	}
}

// Add appends a cell to the baseline.
func (b *Baseline) Add(bm Benchmark) { b.Benchmarks = append(b.Benchmarks, bm) }

// WriteFile persists the baseline as indented JSON.
func WriteFile(path string, b *Baseline) error {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a baseline and validates its schema version.
func ReadFile(path string) (*Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("perf: parsing %s: %w", path, err)
	}
	if b.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema version %d, this build understands %d", path, b.SchemaVersion, SchemaVersion)
	}
	return &b, nil
}

// FormatGoBench renders the baseline in Go's standard benchmark output
// format, so two baselines can be diffed with benchstat:
//
//	benchstat <(old.FormatGoBench) <(new.FormatGoBench)
func (b *Baseline) FormatGoBench() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "goos: %s\ngoarch: %s\n", b.GOOS, b.GOARCH)
	if b.NumCPU > 0 {
		fmt.Fprintf(&sb, "cpu: %d logical CPUs, GOMAXPROCS=%d\n", b.NumCPU, b.GOMAXPROCS)
	}
	for _, bm := range b.Benchmarks {
		name := bm.Name
		if !strings.HasPrefix(name, "Benchmark") {
			name = "Benchmark" + name
		}
		fmt.Fprintf(&sb, "%s %d %d ns/op %d B/op %d allocs/op\n",
			name, bm.Iterations, bm.NsPerOp, bm.BytesPerOp, bm.AllocsPerOp)
	}
	return sb.String()
}

// Tolerance bounds the acceptable growth of a metric between two baselines.
type Tolerance struct {
	// AllocFrac is the allowed fractional increase in allocs/op (0.05 =
	// +5%). Always checked.
	AllocFrac float64
	// TimeFrac is the allowed fractional increase in ns/op. Negative
	// disables the time check (the default for cross-machine comparisons).
	TimeFrac float64
}

// Regression is one metric of one cell that exceeded its tolerance.
type Regression struct {
	Name   string
	Metric string // "allocs/op", "ns/op", or "missing"
	Old    int64
	New    int64
}

func (r Regression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: present in baseline but not measured", r.Name)
	}
	return fmt.Sprintf("%s: %s %d -> %d (%+.1f%%)", r.Name, r.Metric, r.Old, r.New, 100*frac(r.Old, r.New))
}

func frac(old, new int64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 1
	}
	return float64(new-old) / float64(old)
}

// Compare diffs cur against base and returns the regressions, sorted by
// cell name. Cells present only in cur are new coverage, not regressions;
// cells present only in base are reported as missing.
func Compare(base, cur *Baseline, tol Tolerance) []Regression {
	curBy := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, bm := range cur.Benchmarks {
		curBy[bm.Name] = bm
	}
	var out []Regression
	for _, old := range base.Benchmarks {
		now, ok := curBy[old.Name]
		if !ok {
			out = append(out, Regression{Name: old.Name, Metric: "missing"})
			continue
		}
		if frac(old.AllocsPerOp, now.AllocsPerOp) > tol.AllocFrac {
			out = append(out, Regression{Name: old.Name, Metric: "allocs/op", Old: old.AllocsPerOp, New: now.AllocsPerOp})
		}
		if tol.TimeFrac >= 0 && frac(old.NsPerOp, now.NsPerOp) > tol.TimeFrac {
			out = append(out, Regression{Name: old.Name, Metric: "ns/op", Old: old.NsPerOp, New: now.NsPerOp})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
