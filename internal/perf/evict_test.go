package perf_test

import (
	"fmt"
	"testing"

	"shmgpu/internal/hostmem"
	"shmgpu/internal/perf"
)

// The UVM eviction microbenchmark pins the satellite claim that victim
// selection is O(log n) in the frame count: a steady-state cyclic sweep
// over a working set twice the frame budget makes every access a
// fault+eviction (the LRU worst case), so per-fault cost is dominated by
// the victim scan. The old implementation walked every frame per fault;
// the lazy min-heap re-keys stale roots instead, so growing the frame
// count 64× must not grow per-fault cost anywhere near 64×.

const evictPageBytes = 4096

// newEvictTier builds a demand-only tier with `frames` device frames and
// a working set of 2×frames pages, warmed to a full frame budget so every
// subsequent sweep access evicts.
func newEvictTier(tb testing.TB, frames int) (*hostmem.Tier, *uint64) {
	tb.Helper()
	tier, err := hostmem.New(hostmem.Config{
		PageBytes:         evictPageBytes,
		Frames:            frames,
		PCIeLatency:       1,
		PCIeBytesPerCycle: evictPageBytes,
		MetaCycles:        1,
		ThrashWindow:      1,
	}, uint64(2*frames)*evictPageBytes)
	if err != nil {
		tb.Fatal(err)
	}
	cycle := new(uint64)
	for p := 0; p < frames; p++ {
		faultIn(tier, cycle, p)
	}
	return tier, cycle
}

// faultIn drives one page to residency: Access until Admit, ticking the
// tier forward a cycle per retry (pause-and-replay in miniature).
func faultIn(tier *hostmem.Tier, cycle *uint64, page int) {
	addr := uint64(page) * evictPageBytes
	for tier.Access(addr, false, *cycle) != hostmem.Admit {
		*cycle++
		tier.Tick(*cycle)
	}
}

// sweep faults `n` pages of the cyclic worst-case pattern starting at
// *next, each one a miss that evicts the current LRU victim.
func sweep(tier *hostmem.Tier, cycle *uint64, next *int, n int) {
	span := tier.NumPages()
	for i := 0; i < n; i++ {
		faultIn(tier, cycle, *next)
		*next = (*next + 1) % span
	}
}

// perFaultNs measures steady-state cost of one fault+eviction at the
// given frame count, taking the best of `reps` measurements so scheduler
// noise inflates neither side of the scaling comparison.
func perFaultNs(tb testing.TB, frames, faults, reps int) (ns, allocs int64) {
	tb.Helper()
	tier, cycle := newEvictTier(tb, frames)
	next := frames // first non-resident page
	best := int64(1<<63 - 1)
	for r := 0; r < reps; r++ {
		bm := perf.Measure(fmt.Sprintf("evict/frames=%d", frames), 1, func() {
			sweep(tier, cycle, &next, faults)
		})
		per := bm.NsPerOp / int64(faults)
		if per < best {
			best = per
		}
		allocs = bm.AllocsPerOp
	}
	return best, allocs
}

// TestEvictVictimScanSublinear is the scaling pin: 64× more frames may
// cost at most 24× more per fault. The heap's log₂ growth over that
// range is 16/10 ≈ 1.6×, but the larger page/heap arrays also fall out
// of cache, so real growth is memory-bound (≈5–20× on small machines) —
// the bound leaves room for that while still catching the retired
// O(frames) scan, which walked every frame per eviction and would land
// orders of magnitude beyond it.
func TestEvictVictimScanSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timed microbenchmark; skipped in -short")
	}
	small, _ := perFaultNs(t, 1<<10, 2000, 3)
	large, allocs := perFaultNs(t, 1<<16, 2000, 3)
	if small <= 0 {
		t.Fatalf("small-frame measurement degenerate: %d ns/fault", small)
	}
	t.Logf("per-fault cost: frames=1024 %d ns, frames=65536 %d ns (%.1f×)",
		small, large, float64(large)/float64(small))
	if large > 24*small {
		t.Errorf("per-fault cost grew %d -> %d ns (%.1f×) for 64× frames; victim scan is not sub-linear",
			small, large, float64(large)/float64(small))
	}
	if allocs != 0 {
		t.Errorf("steady-state fault+eviction allocates %d times per sweep, want 0", allocs)
	}
}

// BenchmarkEvictFault is the benchstat-friendly rendering of the same
// steady state, one op = one fault+eviction.
func BenchmarkEvictFault(b *testing.B) {
	for _, frames := range []int{1 << 10, 1 << 13, 1 << 16} {
		frames := frames
		b.Run(fmt.Sprintf("frames=%d", frames), func(b *testing.B) {
			tier, cycle := newEvictTier(b, frames)
			next := frames
			b.ReportAllocs()
			b.ResetTimer()
			sweep(tier, cycle, &next, b.N)
		})
	}
}
