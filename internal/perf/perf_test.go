package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestMeasureCountsAllocations(t *testing.T) {
	sink := make([]*int, 0, 8)
	bm := Measure("alloc-cell", 4, func() {
		sink = append(sink[:0], new(int), new(int))
	})
	if bm.Iterations != 4 {
		t.Errorf("Iterations = %d, want 4", bm.Iterations)
	}
	if bm.AllocsPerOp < 2 {
		t.Errorf("AllocsPerOp = %d, want >= 2 (two new(int) per op)", bm.AllocsPerOp)
	}
	if bm.NsPerOp < 0 {
		t.Errorf("NsPerOp = %d, want >= 0", bm.NsPerOp)
	}
	_ = sink
}

func TestMeasureZeroAllocBody(t *testing.T) {
	x := 0
	bm := Measure("clean-cell", 100, func() { x++ })
	if bm.AllocsPerOp != 0 {
		t.Errorf("AllocsPerOp = %d for an allocation-free body, want 0", bm.AllocsPerOp)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := New(true)
	b.TotalWallNs = 12345
	b.Add(Benchmark{Name: "run/atax/SHM", Iterations: 1, NsPerOp: 100, AllocsPerOp: 7, BytesPerOp: 512})
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || !got.Quick || got.TotalWallNs != 12345 {
		t.Errorf("round trip lost header fields: %+v", got)
	}
	if got.NumCPU != b.NumCPU || got.GOMAXPROCS != b.GOMAXPROCS || got.NumCPU == 0 {
		t.Errorf("round trip lost CPU fields: NumCPU=%d GOMAXPROCS=%d, want %d/%d (nonzero)",
			got.NumCPU, got.GOMAXPROCS, b.NumCPU, b.GOMAXPROCS)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0] != b.Benchmarks[0] {
		t.Errorf("round trip lost benchmarks: %+v", got.Benchmarks)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	b := New(false)
	b.SchemaVersion = SchemaVersion + 1
	if err := WriteFile(path, b); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted a future schema version")
	}
}

func TestFormatGoBench(t *testing.T) {
	b := New(false)
	b.Add(Benchmark{Name: "run/atax/SHM", Iterations: 3, NsPerOp: 42, AllocsPerOp: 7, BytesPerOp: 512})
	out := b.FormatGoBench()
	if !strings.Contains(out, "Benchmarkrun/atax/SHM 3 42 ns/op 512 B/op 7 allocs/op") {
		t.Errorf("FormatGoBench output not benchstat-shaped:\n%s", out)
	}
	if !strings.HasPrefix(out, "goos: ") {
		t.Errorf("FormatGoBench missing goos header:\n%s", out)
	}
	if !strings.Contains(out, "cpu: ") || !strings.Contains(out, "GOMAXPROCS=") {
		t.Errorf("FormatGoBench missing cpu header:\n%s", out)
	}
}

func TestCompare(t *testing.T) {
	base := New(true)
	base.Add(Benchmark{Name: "a", AllocsPerOp: 100, NsPerOp: 1000})
	base.Add(Benchmark{Name: "b", AllocsPerOp: 100, NsPerOp: 1000})
	base.Add(Benchmark{Name: "gone", AllocsPerOp: 1, NsPerOp: 1})

	cur := New(true)
	cur.Add(Benchmark{Name: "a", AllocsPerOp: 104, NsPerOp: 5000}) // allocs within 5%, time ignored
	cur.Add(Benchmark{Name: "b", AllocsPerOp: 120, NsPerOp: 1000}) // allocs regressed
	cur.Add(Benchmark{Name: "new-cell", AllocsPerOp: 9999})        // new coverage, not a regression

	regs := Compare(base, cur, Tolerance{AllocFrac: 0.05, TimeFrac: -1})
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2 (allocs on b, missing gone)", len(regs), regs)
	}
	if regs[0].Name != "b" || regs[0].Metric != "allocs/op" {
		t.Errorf("regs[0] = %v, want allocs/op on b", regs[0])
	}
	if regs[1].Name != "gone" || regs[1].Metric != "missing" {
		t.Errorf("regs[1] = %v, want missing gone", regs[1])
	}

	// Opting into the time check catches cell a's 5x slowdown.
	regs = Compare(base, cur, Tolerance{AllocFrac: 0.05, TimeFrac: 0.05})
	found := false
	for _, r := range regs {
		if r.Name == "a" && r.Metric == "ns/op" {
			found = true
		}
	}
	if !found {
		t.Errorf("time check missed a's ns/op regression: %v", regs)
	}
}

func TestCompareZeroAllocBaseline(t *testing.T) {
	base := New(true)
	base.Add(Benchmark{Name: "clean", AllocsPerOp: 0})
	cur := New(true)
	cur.Add(Benchmark{Name: "clean", AllocsPerOp: 3})
	if regs := Compare(base, cur, Tolerance{AllocFrac: 0.05, TimeFrac: -1}); len(regs) != 1 {
		t.Errorf("0 -> 3 allocs/op not flagged: %v", regs)
	}
	cur.Benchmarks[0].AllocsPerOp = 0
	if regs := Compare(base, cur, Tolerance{AllocFrac: 0.05, TimeFrac: -1}); len(regs) != 0 {
		t.Errorf("0 -> 0 allocs/op flagged: %v", regs)
	}
}
