package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "bench", "value")
	tb.AddRow("fdtd2d", 0.984)
	tb.AddRow("bfs", 0.71)
	s := tb.String()
	if !strings.Contains(s, "Fig. X") || !strings.Contains(s, "fdtd2d") {
		t.Fatalf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 6 { // title, underline, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Column alignment: all data rows have the same prefix width.
	if len(lines[4]) == 0 || len(lines[5]) == 0 {
		t.Fatal("empty rows")
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "=") {
		t.Fatal("untitled table should not render a title underline")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0}); got != 0 {
		t.Errorf("GeoMean with zero = %v, want 0", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.0809); got != "8.09%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
