// Package report formats experiment results as aligned text tables and
// series, the form in which the benchmark harness regenerates each table
// and figure of the paper. It also provides the aggregation helpers
// (arithmetic and geometric means) the paper's averages use.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean (0 for empty or non-positive input).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percent renders a ratio as "12.34%".
func Percent(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// SortedKeys returns map keys in sorted order (for deterministic output).
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
