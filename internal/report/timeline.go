package report

import (
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
)

// TimelineTable renders a sampled run timeline as per-interval activity:
// instructions issued, IPC, DRAM bytes split data/metadata, L2 miss rate and
// the end-of-interval DRAM queue occupancy. Returns nil when the timeline
// holds fewer than two samples (nothing to difference).
func TimelineTable(tl telemetry.Timeline) *Table {
	deltas := tl.Deltas()
	if len(deltas) == 0 {
		return nil
	}
	t := NewTable("Timeline (per sampling interval)",
		"cycle", "instr", "ipc", "data B", "meta B", "l2 miss", "dram pend")
	prev := tl.Samples[0].Cycle
	for _, d := range deltas {
		span := d.Cycle - prev
		ipc := 0.0
		if span > 0 {
			ipc = float64(d.Instructions) / float64(span)
		}
		meta := d.Traffic.MetadataBytes()
		t.AddRow(d.Cycle, d.Instructions, ipc,
			d.Traffic.Bytes(stats.TrafficData), meta,
			Percent(d.L2.MissRate()), d.DRAMPending)
		prev = d.Cycle
	}
	return t
}
