package gpu

// The UVM layer: glue between the host-backed memory tier
// (internal/hostmem) and the simulated GPU. The tier gates crossbar
// admission — an access to a non-resident page faults, starts a
// PCIe-modeled migration, and leaves the request at the head of its
// SM's miss queue, which retries it every cycle until the page arrives
// (XNACK-style pause-and-replay; drainMisses already stops at the first
// rejected request, and SM.nextEvent pins the horizon to now+1 while
// the queue is non-empty, so both engines replay identically).
//
// Security metadata travels with pages: under the "rebuild" integrity
// mode a fault-in re-encrypts the migrated range with fresh counters,
// which the RO predictor observes exactly like a host overwrite
// (MigrationOverwrite); under "hostside" a trusted host-side MEE keeps
// coverage valid and fault-in only re-keys, so detectors see nothing.
//
// Determinism: every tier mutation happens in the sequential parts of
// the tick — Access inside the SM-ordered crossbar drains (phase 1 in
// the parallel engine) and Tick right after the sample boundary — so
// sharded runs are byte-identical to sequential ones. When the working
// set fits (OversubRatio >= 1) the tier prepopulates every page, never
// faults, touches no counters, and emits no events: results are
// byte-identical to HostTier=false.

import (
	"shmgpu/internal/hostmem"
	"shmgpu/internal/memdef"
	"shmgpu/internal/telemetry"
)

// uvmState owns the host tier and its simulator-facing accounting.
type uvmState struct {
	sys  *System
	tier *hostmem.Tier
	// rebuild selects the expensive integrity mode: tear down device
	// metadata coverage on eviction, re-establish on fault-in.
	rebuild bool
	// roTransitions counts predictor RO->RW transitions caused by
	// migration re-encryption, accumulated here because the registry's
	// map insert is off-limits on the tick path.
	roTransitions uint64
}

// uvmWorkingSet is the optional Workload extension the tier sizes
// itself from; workloads without it are assumed to span device memory.
type uvmWorkingSet interface {
	Footprint() uint64
}

// startUVM builds the host tier at run start (idempotent; no-op unless
// Config.HostTier). LoadState calls it too, before decoding tier state.
func (s *System) startUVM(wl Workload) {
	if !s.cfg.HostTier || s.uvm != nil {
		return
	}
	ws := s.cfg.DeviceMemoryBytes
	if f, ok := wl.(uvmWorkingSet); ok {
		if fp := f.Footprint(); fp > 0 {
			ws = fp
		}
	}
	policy, err := hostmem.ParsePolicy(s.cfg.UVMMigrationPolicy)
	if err != nil {
		panic(err) // Config.Validate already rejected this
	}
	integrity, err := hostmem.ParseIntegrity(s.cfg.UVMHostIntegrity)
	if err != nil {
		panic(err)
	}
	prefetch, err := hostmem.ParsePrefetch(s.cfg.UVMPrefetch)
	if err != nil {
		panic(err)
	}
	pageBytes := s.cfg.UVMPageBytes
	var subPageBytes uint64
	if s.cfg.UVMLargePages {
		pageBytes = hostmem.LargePageBytes
		subPageBytes = hostmem.DefaultSubPageBytes
	}
	if pageBytes == 0 {
		pageBytes = hostmem.DefaultPageBytes
	}
	numPages := int((ws + pageBytes - 1) / pageBytes)
	if numPages < 1 {
		numPages = 1
	}
	frames := int(s.cfg.OversubRatio * float64(numPages))
	tier, err := hostmem.New(hostmem.Config{
		PageBytes:         pageBytes,
		Frames:            frames,
		Policy:            policy,
		Integrity:         integrity,
		PCIeLatency:       s.cfg.UVMPCIeLatency,
		PCIeBytesPerCycle: s.cfg.UVMPCIeBytesPerCycle,
		Prefetch:          prefetch,
		PrefetchDegree:    s.cfg.UVMPrefetchDegree,
		BatchPages:        s.cfg.UVMBatchPages,
		SubPageBytes:      subPageBytes,
	}, ws)
	if err != nil {
		panic(err)
	}
	u := &uvmState{sys: s, tier: tier, rebuild: integrity == hostmem.IntegrityRebuild}
	tier.OnFaultIn = u.onFaultIn
	tier.OnEvict = u.onEvict
	if prefetch != hostmem.PrefetchNone {
		tier.OnPrefetch = u.onPrefetch
	}
	if prefetch == hostmem.PrefetchStream {
		tier.Classify = u.classifyStreaming
	}
	s.uvm = u
}

// classifyStreaming bridges the tier's stream-prefetch policy to the
// paper's streaming detector: a page counts as streaming when the
// partition-0 MEE's predictor (oracle preload or trained bit vector;
// preloads and truth ranges are identical across partitions) classifies
// the page's first chunk as streaming. Called only on demand faults.
func (u *uvmState) classifyStreaming(page int) bool {
	lo, hi := u.tier.PageRange(page)
	llo, _ := u.sys.pmap.LocalRange(memdef.Addr(lo), memdef.Addr(hi))
	return u.sys.mees[0].PredictStreaming(llo)
}

// onPrefetch fires from tier.Access when a migration batch carrying
// prefetched pages is issued; the batch-size sample feeds the
// coalescing histogram.
func (u *uvmState) onPrefetch(page, pages int) {
	if tele := u.sys.tele; tele != nil {
		tele.Emit(telemetry.Event{Cycle: u.sys.tickNow, Kind: telemetry.EvPagePrefetch, Part: -1, Value: uint64(pages)})
	}
}

// admit gates one crossbar admission attempt on page residency. False
// means the request must stay queued and replay next cycle.
func (u *uvmState) admit(addr memdef.Addr, write bool, now uint64) bool {
	switch u.tier.Access(uint64(addr), write, now) {
	case hostmem.Admit:
		return true
	case hostmem.Fault:
		if tele := u.sys.tele; tele != nil {
			tele.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvPageFault, Part: -1})
		}
		return false
	default: // hostmem.Stall: migrating, or the migration ring is full
		return false
	}
}

// tick completes due migrations. Runs in the sequential pre-phase of
// both engines, after the telemetry sample boundary and before the SM
// crossbar drains, so a page ready at cycle N admits retries at N in
// sequential and sharded runs alike.
func (u *uvmState) tick(now uint64) { u.tier.Tick(now) }

// onFaultIn fires from tier.Tick when a migration completes: emit the
// latency sample and, under full rebuild, re-establish metadata
// coverage for the migrated range (fresh counters = detector-visible
// overwrite).
func (u *uvmState) onFaultIn(page int, latency uint64) {
	s := u.sys
	if s.tele != nil {
		s.tele.Emit(telemetry.Event{Cycle: s.tickNow, Kind: telemetry.EvPageMigrateIn, Part: -1, Value: latency})
	}
	if !u.rebuild {
		return
	}
	lo, hi := u.tier.PageRange(page)
	llo, lhi := s.pmap.LocalRange(memdef.Addr(lo), memdef.Addr(hi))
	for _, mee := range s.mees {
		u.roTransitions += mee.MigrationOverwrite(llo, lhi)
	}
}

// onEvict fires from tier.Access when a victim page drops to the host
// tier (metadata coverage teardown is charged to the fault-in side's
// MetaCycles; the detectors only observe the rebuild).
func (u *uvmState) onEvict(page int, dirty, thrash bool) {
	tele := u.sys.tele
	if tele == nil {
		return
	}
	var class uint8
	if dirty {
		class = 1
	}
	tele.Emit(telemetry.Event{Cycle: u.sys.tickNow, Kind: telemetry.EvPageEvict, Part: -1, Class: class})
	if thrash {
		tele.Emit(telemetry.Event{Cycle: u.sys.tickNow, Kind: telemetry.EvPageThrash, Part: -1})
	}
}

// mergeInto folds the tier's counters into the run registry. Keys are
// only inserted when nonzero so a never-faulting tier (ratio >= 1)
// leaves the registry byte-identical to a tier-less run.
func (u *uvmState) mergeInto(res *Result) {
	st := u.tier.Stats()
	if st.Faults != 0 {
		res.Reg.Add("uvm_faults", st.Faults)
	}
	if st.Replays != 0 {
		res.Reg.Add("uvm_replays", st.Replays)
	}
	if st.MigrationsIn != 0 {
		res.Reg.Add("uvm_migrations_in", st.MigrationsIn)
	}
	if st.Evictions != 0 {
		res.Reg.Add("uvm_evictions", st.Evictions)
	}
	if st.WritebacksDirty != 0 {
		res.Reg.Add("uvm_writebacks_dirty", st.WritebacksDirty)
	}
	if st.WritebacksClean != 0 {
		res.Reg.Add("uvm_writebacks_clean", st.WritebacksClean)
	}
	if st.Thrash != 0 {
		res.Reg.Add("uvm_thrash", st.Thrash)
	}
	if st.BytesIn != 0 {
		res.Reg.Add("uvm_bytes_in", st.BytesIn)
	}
	if st.BytesOut != 0 {
		res.Reg.Add("uvm_bytes_out", st.BytesOut)
	}
	if st.MetaCycles != 0 {
		res.Reg.Add("uvm_meta_cycles", st.MetaCycles)
	}
	if st.Prefetches != 0 {
		res.Reg.Add("uvm_prefetches", st.Prefetches)
	}
	if st.PrefUseful != 0 {
		res.Reg.Add("uvm_pref_useful", st.PrefUseful)
	}
	if st.PrefLate != 0 {
		res.Reg.Add("uvm_pref_late", st.PrefLate)
	}
	if st.PrefUseless != 0 {
		res.Reg.Add("uvm_pref_useless", st.PrefUseless)
	}
	if st.Batches != 0 {
		res.Reg.Add("uvm_batches", st.Batches)
	}
	if u.roTransitions != 0 {
		res.Reg.Add("uvm_ro_transitions", u.roTransitions)
	}
}
