// Package gpu wires the full simulated GPU together: streaming
// multiprocessors (SMs) with warp schedulers and sectored L1 caches, a
// crossbar to the memory partitions, two sectored L2 banks per partition,
// the per-partition memory encryption engines (secmem.MEE), and the GDDR
// channels (dram.Channel). It owns the cycle loop and produces the
// simulation results (IPC, traffic, cache stats, predictor accuracy) that
// the experiment harness turns into the paper's figures.
//
// The model is a trace-generating, cycle-driven simulator in the spirit of
// GPGPU-Sim's memory-system modeling: warps issue one instruction per cycle
// when ready, block on memory uses, and hide latency through multithreading;
// bandwidth contention emerges from bounded queues at every hop.
package gpu

import (
	"fmt"

	"shmgpu/internal/dram"
	"shmgpu/internal/hostmem"
	"shmgpu/internal/secmem"
)

// Config describes the simulated GPU (paper Table V by default).
type Config struct {
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpsPerSM is the number of concurrently resident warps per SM.
	WarpsPerSM int
	// Partitions is the number of memory partitions (DRAM channels).
	Partitions int
	// L2BanksPerPartition is the number of L2 banks per partition.
	L2BanksPerPartition int
	// L2BankBytes is the capacity of each L2 bank.
	L2BankBytes int
	// L2Ways is the L2 associativity.
	L2Ways int
	// L2MSHRs and L2Merges configure each bank's MSHR file.
	L2MSHRs, L2Merges int
	// L1Bytes and L1Ways configure each SM's L1.
	L1Bytes, L1Ways int
	// L1MSHRs bounds outstanding L1 misses per SM.
	L1MSHRs int
	// L1Latency and L2Latency are hit latencies in cycles.
	L1Latency, L2Latency uint64
	// MaxWarpInflightSectors is the per-warp cap on outstanding load
	// sectors: GPU warps issue independent loads non-blocking until a use
	// (scoreboarding), so several memory instructions overlap per warp.
	MaxWarpInflightSectors int
	// XbarLatency is the one-way interconnect latency in cycles.
	XbarLatency uint64
	// XbarQueueDepth is the per-partition crossbar request queue capacity;
	// SMs see back-pressure when a partition's queue is full. (Previously a
	// hardcoded 64 in the tick loop.)
	XbarQueueDepth int
	// DisableFastForward forces every-cycle ticking instead of the
	// event-horizon fast-forward. Results are identical either way (the
	// equivalence property test runs both); the knob exists for that test
	// and for debugging horizon regressions.
	DisableFastForward bool
	// DeviceMemoryBytes is the protected device memory size.
	DeviceMemoryBytes uint64
	// DRAM configures each partition's channel.
	DRAM dram.Config
	// MaxCycles bounds the simulation length per kernel (0 = unlimited).
	MaxCycles uint64
	// VictimMissRateThreshold enables L2-as-victim-cache when the sampled
	// L2 data miss rate exceeds it (paper: 0.90).
	VictimMissRateThreshold float64
	// VictimSampleWindow is the accesses per miss-rate sampling epoch.
	VictimSampleWindow uint64
	// MEETune, when non-nil, adjusts each partition's MEE configuration
	// after defaults are applied — the hook ablation studies use to sweep
	// tracker counts, metadata-cache sizes, timeouts, etc.
	MEETune func(*secmem.Config)
	// ParallelShards, when positive, runs each tick's work sharded across
	// a fixed worker pool: SM clusters on one axis, {L2 banks + MEE + DRAM
	// channel} partition stacks on the other, with a deterministic
	// double-buffered queue exchange between phases (see parallel.go).
	// Results are byte-identical to the sequential loop. 0 (the default)
	// keeps the single-goroutine loop. Designs that route metadata across
	// partitions (Options.Enabled without LocalMetadata) and runs with the
	// runtime sanitizer armed fall back to sequential execution, as does
	// XbarLatency 0 (the exchange relies on responses maturing strictly
	// after the tick that produced them).
	ParallelShards int
	// HostTier enables the host-backed memory tier (UVM demand paging):
	// the workload's footprint starts host-resident behind a
	// page-granularity migration boundary, and crossbar admission faults
	// on non-resident pages (see internal/hostmem and uvm.go). With
	// OversubRatio >= 1 the working set fits in device frames, every
	// page is prepopulated, and results are byte-identical to
	// HostTier=false — the migration-equivalence property the fuzz
	// battery pins.
	HostTier bool
	// UVMPageBytes is the migration page size (0 = hostmem default;
	// must be a power of two).
	UVMPageBytes uint64
	// OversubRatio is device frame capacity as a fraction of the
	// workload footprint: frames = floor(ratio * pages), so 0.5 fits
	// half the working set. Values >= 1 disable faulting entirely.
	// Required (> 0) when HostTier is set.
	OversubRatio float64
	// UVMMigrationPolicy selects the eviction victim: "lru" (default)
	// or "fifo".
	UVMMigrationPolicy string
	// UVMHostIntegrity selects metadata handling across the PCIe
	// boundary: "rebuild" (default) tears down device-side
	// counter/MAC/BMT coverage on eviction and fully re-establishes it
	// on fault-in (detector-visible, expensive); "hostside" trusts a
	// host-side MEE to keep coverage valid, so fault-in only re-keys.
	UVMHostIntegrity string
	// UVMPCIeLatency and UVMPCIeBytesPerCycle override the modeled
	// migration link (0 = hostmem defaults).
	UVMPCIeLatency, UVMPCIeBytesPerCycle uint64
	// UVMPrefetch selects the migration-ahead policy: "none" (default,
	// purely demand-driven), "stride" (per-fault-stream sequential
	// stride detection), or "stream" (the paper's streaming-detector
	// classification drives bulk fetch-ahead with eager eviction). At
	// OversubRatio >= 1 no faults occur, so every policy is provably
	// idle and results stay byte-identical to HostTier=false.
	UVMPrefetch string
	// UVMPrefetchDegree is how many pages one prefetch trigger fetches
	// ahead (0 = hostmem default).
	UVMPrefetchDegree int
	// UVMBatchPages caps how many adjacent pages coalesce into one
	// batched PCIe transaction, paying link latency and metadata
	// re-establishment once per batch (0 = hostmem default).
	UVMBatchPages int
	// UVMLargePages switches migration granularity to 2 MiB large pages
	// with 64 KiB sub-page dirty tracking, so writebacks transfer only
	// the sub-pages actually written. Mutually exclusive with
	// UVMPageBytes.
	UVMLargePages bool
}

// DefaultConfig returns the paper's baseline GPU (Table V), with a device
// memory sized down from 4 GB to keep simulations fast while preserving all
// addressing behaviour (the metadata layout scales linearly).
func DefaultConfig() Config {
	return Config{
		SMs:                     30,
		WarpsPerSM:              24,
		Partitions:              12,
		L2BanksPerPartition:     2,
		L2BankBytes:             128 << 10,
		L2Ways:                  8,
		L2MSHRs:                 192,
		L2Merges:                16,
		L1Bytes:                 64 << 10,
		L1Ways:                  4,
		L1MSHRs:                 64,
		L1Latency:               20,
		L2Latency:               30,
		XbarLatency:             20,
		XbarQueueDepth:          64,
		MaxWarpInflightSectors:  32,
		DeviceMemoryBytes:       768 << 20,
		DRAM:                    dram.DefaultConfig(),
		MaxCycles:               400_000,
		VictimMissRateThreshold: 0.90,
		VictimSampleWindow:      8192,
	}
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.SMs <= 0 || c.WarpsPerSM <= 0 {
		return fmt.Errorf("gpu: SMs and warps must be positive")
	}
	if c.Partitions <= 0 || c.L2BanksPerPartition <= 0 {
		return fmt.Errorf("gpu: partitions and banks must be positive")
	}
	if c.DeviceMemoryBytes%uint64(c.Partitions) != 0 {
		return fmt.Errorf("gpu: device memory %d not divisible by %d partitions", c.DeviceMemoryBytes, c.Partitions)
	}
	if c.XbarQueueDepth <= 0 {
		return fmt.Errorf("gpu: XbarQueueDepth must be positive")
	}
	if c.ParallelShards < 0 {
		return fmt.Errorf("gpu: ParallelShards must be non-negative, got %d", c.ParallelShards)
	}
	if c.HostTier {
		if !(c.OversubRatio > 0) {
			return fmt.Errorf("gpu: HostTier requires OversubRatio > 0, got %g", c.OversubRatio)
		}
		if c.UVMPageBytes != 0 && c.UVMPageBytes&(c.UVMPageBytes-1) != 0 {
			return fmt.Errorf("gpu: UVMPageBytes %d is not a power of two", c.UVMPageBytes)
		}
		if _, err := hostmem.ParsePolicy(c.UVMMigrationPolicy); err != nil {
			return err
		}
		if _, err := hostmem.ParseIntegrity(c.UVMHostIntegrity); err != nil {
			return err
		}
		if _, err := hostmem.ParsePrefetch(c.UVMPrefetch); err != nil {
			return err
		}
		if c.UVMLargePages && c.UVMPageBytes != 0 {
			return fmt.Errorf("gpu: UVMLargePages and UVMPageBytes %d are mutually exclusive", c.UVMPageBytes)
		}
		if c.UVMPrefetchDegree < 0 || c.UVMBatchPages < 0 {
			return fmt.Errorf("gpu: UVMPrefetchDegree and UVMBatchPages must be non-negative")
		}
	}
	return c.DRAM.Validate()
}

// MEEOptionsToConfig builds the per-partition MEE config for the selected
// design options.
func (c Config) MEEOptionsToConfig(opts secmem.Options, partition int) secmem.Config {
	protected := c.DeviceMemoryBytes / uint64(c.Partitions)
	if !opts.LocalMetadata {
		protected = c.DeviceMemoryBytes
	}
	cfg := secmem.DefaultConfig(opts, partition, c.Partitions, protected)
	if c.MEETune != nil {
		c.MEETune(&cfg)
	}
	return cfg
}
