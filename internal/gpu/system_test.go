package gpu

import (
	"testing"

	"shmgpu/internal/memdef"
	"shmgpu/internal/secmem"
	"shmgpu/internal/stats"
)

// streamWorkload is a minimal test workload: every warp streams through its
// slice of a shared buffer, with a configurable compute:memory ratio and
// write fraction.
type streamWorkload struct {
	name       string
	bufBytes   uint64
	compute    int
	insts      int
	writeEvery int // 0 = read-only
	kernels    int
	resetAPI   bool
}

func (w *streamWorkload) Name() string { return w.name }
func (w *streamWorkload) Kernels() int { return w.kernels }

func (w *streamWorkload) Setup(k int) KernelSetup {
	ro := w.writeEvery == 0
	setup := KernelSetup{
		CopyRanges:  []AddrRange{{0, memdef.Addr(w.bufBytes)}},
		UseResetAPI: w.resetAPI,
		StreamTruths: []StreamTruth{
			{Range: AddrRange{0, memdef.Addr(w.bufBytes)}, Streaming: true},
		},
	}
	if ro {
		setup.ReadOnlyTruth = []AddrRange{{0, memdef.Addr(w.bufBytes)}}
	}
	return setup
}

type streamWarp struct {
	w      *streamWorkload
	cursor memdef.Addr
	step   memdef.Addr
	limit  memdef.Addr
	issued int
}

// NewWarp assigns warps block-cyclically (warp i handles blocks i, i+N,
// i+2N, ...), the coherent coalesced sweep real GPU grids produce: at any
// instant the active frontier is a narrow contiguous window, exactly once
// over the whole buffer.
func (w *streamWorkload) NewWarp(kernel, sm, warp int) WarpProgram {
	const smCount, warpCount = 4, 8 // matches smallConfig
	idx := uint64(sm*warpCount + warp)
	total := uint64(smCount * warpCount)
	return &streamWarp{
		w:      w,
		cursor: memdef.Addr(idx * memdef.BlockSize),
		step:   memdef.Addr(total * memdef.BlockSize),
		limit:  memdef.Addr(w.bufBytes),
	}
}

func (p *streamWarp) Next() (int, MemInst, bool) {
	if p.issued >= p.w.insts || p.cursor >= p.limit {
		return 0, MemInst{}, true
	}
	p.issued++
	base := p.cursor
	p.cursor += p.step
	sectors := make([]memdef.Addr, memdef.SectorsPerBlock)
	for i := range sectors {
		sectors[i] = base + memdef.Addr(i*memdef.SectorSize)
	}
	write := p.w.writeEvery > 0 && p.issued%p.w.writeEvery == 0
	return p.w.compute, MemInst{Sectors: sectors, Write: write, Space: memdef.SpaceGlobal}, false
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.SMs = 4
	cfg.WarpsPerSM = 8
	cfg.DeviceMemoryBytes = 48 << 20
	cfg.MaxCycles = 300_000
	return cfg
}

func baselineOpts() secmem.Options { return secmem.Options{} }

func shmOptions() secmem.Options {
	return secmem.Options{
		Enabled: true, LocalMetadata: true, SectoredMetadata: true,
		ReadOnlyOpt: true, DualGranMAC: true,
	}
}

func pssmOptions() secmem.Options {
	return secmem.Options{Enabled: true, LocalMetadata: true, SectoredMetadata: true}
}

func naiveOptions() secmem.Options { return secmem.Options{Enabled: true} }

func run(t *testing.T, cfg Config, opts secmem.Options, wl Workload) Result {
	t.Helper()
	res := NewSystem(cfg, opts).Run(wl)
	if res.Instructions == 0 {
		t.Fatalf("no instructions executed: %+v", res)
	}
	return res
}

// testStream covers a 2 MiB buffer completely: each of the 32 warps streams
// a contiguous 64 KiB slice (512 blocks).
func testStream(mem int) *streamWorkload {
	return &streamWorkload{name: "stream", bufBytes: 2 << 20, compute: 6, insts: mem, kernels: 1}
}

func TestBaselineRunsToCompletion(t *testing.T) {
	res := run(t, smallConfig(), baselineOpts(), testStream(600))
	if !res.Completed {
		t.Fatalf("baseline did not complete: %s", res.String())
	}
	if res.Traffic.MetadataBytes() != 0 {
		t.Errorf("baseline produced metadata traffic: %d", res.Traffic.MetadataBytes())
	}
	if res.IPC() <= 0 {
		t.Errorf("IPC = %v", res.IPC())
	}
	if res.Traffic.DataBytes() == 0 {
		t.Error("no data traffic")
	}
}

func TestSecureSchemesSlowerThanBaseline(t *testing.T) {
	wl := testStream(600)
	base := run(t, smallConfig(), baselineOpts(), wl)
	naive := run(t, smallConfig(), naiveOptions(), wl)
	pssm := run(t, smallConfig(), pssmOptions(), wl)
	if naive.IPC() >= base.IPC() {
		t.Errorf("naive IPC %.3f not below baseline %.3f", naive.IPC(), base.IPC())
	}
	if pssm.IPC() > base.IPC()*1.001 {
		t.Errorf("pssm IPC %.3f above baseline %.3f", pssm.IPC(), base.IPC())
	}
	// Naive must generate far more metadata traffic than PSSM.
	if naive.Traffic.MetadataBytes() <= pssm.Traffic.MetadataBytes() {
		t.Errorf("naive metadata %d not above pssm %d",
			naive.Traffic.MetadataBytes(), pssm.Traffic.MetadataBytes())
	}
}

func TestSHMBeatsPSSMOnReadOnlyStream(t *testing.T) {
	wl := testStream(600) // read-only streaming: SHM's best case
	pssm := run(t, smallConfig(), pssmOptions(), wl)
	shm := run(t, smallConfig(), shmOptions(), wl)
	if shm.BandwidthOverhead() >= pssm.BandwidthOverhead() {
		t.Errorf("SHM bw overhead %.3f not below PSSM %.3f",
			shm.BandwidthOverhead(), pssm.BandwidthOverhead())
	}
	if shm.IPC() < pssm.IPC()*0.99 {
		t.Errorf("SHM IPC %.3f more than 1%% below PSSM %.3f", shm.IPC(), pssm.IPC())
	}
	// Read-only streaming under SHM should pay no counter or BMT traffic.
	if got := shm.Traffic.Bytes(stats.TrafficCounter); got != 0 {
		t.Errorf("SHM counter traffic = %d on read-only workload", got)
	}
	if got := shm.Traffic.Bytes(stats.TrafficBMT); got != 0 {
		t.Errorf("SHM BMT traffic = %d on read-only workload", got)
	}
}

func TestWriteWorkloadTriggersTransitions(t *testing.T) {
	wl := &streamWorkload{name: "rw", bufBytes: 2 << 20, compute: 6, insts: 600, writeEvery: 4, kernels: 1}
	res := run(t, smallConfig(), shmOptions(), wl)
	if res.Reg.Get("ro_transition") == 0 {
		t.Error("no RO transitions despite writes to copied input")
	}
	if res.Traffic.Bytes(stats.TrafficCounter) == 0 {
		t.Error("no counter traffic despite writes")
	}
}

func TestMultiKernelWithResetAPI(t *testing.T) {
	wl := &streamWorkload{name: "mk", bufBytes: 2 << 20, compute: 6, insts: 150, kernels: 3, resetAPI: true}
	res := run(t, smallConfig(), shmOptions(), wl)
	if res.Reg.Get("input_readonly_reset") == 0 {
		t.Error("reset API never invoked across kernels")
	}
}

func TestMultiKernelOverwriteClearsRO(t *testing.T) {
	// Without the reset API, later-kernel copies clear RO state, so
	// counter traffic must appear in later kernels.
	wl := &streamWorkload{name: "mko", bufBytes: 2 << 20, compute: 6, insts: 150, kernels: 2}
	res := run(t, smallConfig(), shmOptions(), wl)
	if res.Traffic.Bytes(stats.TrafficCounter) == 0 {
		t.Error("overwritten inputs still treated as read-only")
	}
}

func TestOracleUpperBoundAtLeastAsGood(t *testing.T) {
	wl := testStream(600)
	shm := run(t, smallConfig(), shmOptions(), wl)
	oracleOpts := shmOptions()
	oracleOpts.OracleDetectors = true
	oracle := run(t, smallConfig(), oracleOpts, wl)
	if oracle.Traffic.Bytes(stats.TrafficMispredict) != 0 {
		t.Error("oracle design charged mispredict traffic")
	}
	if oracle.Traffic.MetadataBytes() > shm.Traffic.MetadataBytes() {
		t.Errorf("oracle metadata %d above detector-based %d",
			oracle.Traffic.MetadataBytes(), shm.Traffic.MetadataBytes())
	}
}

func TestAccuracyTracking(t *testing.T) {
	opts := shmOptions()
	opts.TrackAccuracy = true
	res := run(t, smallConfig(), opts, testStream(600))
	if res.ROAccuracy.Total() == 0 || res.StreamAccuracy.Total() == 0 {
		t.Fatalf("accuracy not tracked: ro=%d st=%d",
			res.ROAccuracy.Total(), res.StreamAccuracy.Total())
	}
	// Streaming workload: streaming predictions should be mostly right.
	if acc := res.StreamAccuracy.Accuracy(); acc < 0.6 {
		t.Errorf("streaming accuracy %.2f unreasonably low for a pure stream", acc)
	}
}

func TestVictimCacheMode(t *testing.T) {
	// High-miss-rate streaming with victim mode: expect pushes/hits > 0.
	opts := shmOptions()
	opts.VictimL2 = true
	wl := &streamWorkload{name: "vc", bufBytes: 8 << 20, compute: 2, insts: 800, writeEvery: 3, kernels: 1}
	res := run(t, smallConfig(), opts, wl)
	if res.VictimPushes == 0 {
		t.Skip("victim mode never activated (miss rate below threshold in this configuration)")
	}
	if res.VictimHits == 0 {
		t.Log("victim cache active but never hit; acceptable for streaming metadata")
	}
}

func TestResultString(t *testing.T) {
	res := run(t, smallConfig(), baselineOpts(), testStream(50))
	if res.String() == "" {
		t.Fatal("empty result string")
	}
}

func TestDeterminism(t *testing.T) {
	wl := testStream(600)
	a := run(t, smallConfig(), shmOptions(), wl)
	b := run(t, smallConfig(), shmOptions(), &streamWorkload{name: "stream", bufBytes: 2 << 20, compute: 6, insts: 600, kernels: 1})
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.Traffic.TotalBytes() != b.Traffic.TotalBytes() {
		t.Errorf("runs differ: %s vs %s", a.String(), b.String())
	}
}
