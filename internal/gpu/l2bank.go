package gpu

import (
	"shmgpu/internal/cache"
	"shmgpu/internal/flatmap"
	"shmgpu/internal/memdef"
	"shmgpu/internal/ringbuf"
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
)

// l2Request is a sector request at the L2, carrying routing back to its SM.
type l2Request struct {
	req     memdef.Request
	arrived uint64
}

// L2Bank is one sectored L2 cache bank. Misses and dirty write-backs are
// forwarded to the partition's MEE. The bank also implements the metadata
// victim-cache role of §IV-D: metadata sectors evicted from the MDCs can be
// parked in the bank's data array and recalled on MDC misses, gated by a
// sampled data miss rate.
type L2Bank struct {
	partition int
	bank      int
	cfg       *Config
	c         *cache.Cache
	// waiters maps a sector being fetched to the requests to answer, in
	// arrival (FIFO) order.
	waiters flatmap.MultiMap[memdef.Request]
	// input is the queue from the crossbar.
	input ringbuf.Ring[l2Request]
	// toMEE buffers requests the MEE could not yet accept.
	toMEE ringbuf.Ring[memdef.Request]

	// Miss-rate sampling for the victim-cache trigger. Data accesses only;
	// metadata (victim) traffic is excluded, mirroring the paper's
	// reserved sampling sets.
	sampleAccesses uint64
	sampleMisses   uint64
	sampledRate    float64
	haveSample     bool

	// VictimHits/VictimPushes count victim-cache activity.
	VictimHits, VictimPushes uint64

	// probe, when non-nil, observes data read hits and misses.
	probe telemetry.Probe
}

func (b *L2Bank) accessProbe(now uint64, kind telemetry.EventKind) {
	if b.probe != nil {
		b.probe.Emit(telemetry.Event{Cycle: now, Kind: kind, Part: int16(b.partition), Unit: int16(b.bank)})
	}
}

func newL2Bank(partition, bank int, cfg *Config) *L2Bank {
	return &L2Bank{
		partition: partition,
		bank:      bank,
		cfg:       cfg,
		c: cache.New(cache.Config{
			Name:             "l2",
			SizeBytes:        cfg.L2BankBytes,
			Ways:             cfg.L2Ways,
			MSHRs:            cfg.L2MSHRs,
			MaxMergesPerMSHR: cfg.L2Merges,
		}),
	}
}

// Stats exposes the bank's cache stats.
func (b *L2Bank) Stats() stats.CacheStats { return b.c.Stats }

// l2InputDepth is the bank input queue capacity (entries accepted from the
// crossbar before the bank back-pressures the interconnect).
const l2InputDepth = 64

// canAccept reports whether the bank can take another request.
func (b *L2Bank) canAccept() bool { return b.input.Len() < l2InputDepth }

// enqueue admits a request from the crossbar.
func (b *L2Bank) enqueue(r memdef.Request, now uint64) bool {
	if !b.canAccept() {
		return false
	}
	b.input.Push(l2Request{req: r, arrived: now})
	return true
}

// submitToMEE forwards a request to the MEE, buffering on back-pressure.
type meePort interface {
	SubmitRead(r memdef.Request, now uint64) bool
	SubmitWrite(r memdef.Request, now uint64) bool
}

func (b *L2Bank) sample(miss bool) {
	b.sampleAccesses++
	if miss {
		b.sampleMisses++
	}
	if b.sampleAccesses >= b.cfg.VictimSampleWindow {
		b.sampledRate = float64(b.sampleMisses) / float64(b.sampleAccesses)
		b.haveSample = true
		b.sampleAccesses, b.sampleMisses = 0, 0
	}
}

// resetSampling clears the sampler (kernel boundary, per the paper).
func (b *L2Bank) resetSampling() {
	b.sampleAccesses, b.sampleMisses = 0, 0
	b.haveSample = false
	b.sampledRate = 0
}

// victimActive reports whether the sampled data miss rate exceeds the
// threshold.
func (b *L2Bank) victimActive() bool {
	return b.haveSample && b.sampledRate >= b.cfg.VictimMissRateThreshold
}

// tick processes up to issueWidth input requests, forwarding misses and
// write-backs to the MEE. Responses ready from cache hits are appended via
// respond.
func (b *L2Bank) tick(now uint64, mee meePort, respond func(memdef.Request, uint64)) {
	// Retry buffered MEE submissions first.
	for b.toMEE.Len() > 0 {
		r := *b.toMEE.Front()
		var ok bool
		if r.Kind == memdef.Write {
			ok = mee.SubmitWrite(r, now)
		} else {
			ok = mee.SubmitRead(r, now)
		}
		if !ok {
			break
		}
		b.toMEE.PopFront()
	}
	if b.toMEE.Len() > 96 {
		return // severe back-pressure: stop accepting work this cycle
	}
	const issueWidth = 2
	for i := 0; i < issueWidth && b.input.Len() > 0; i++ {
		lr := *b.input.Front()
		if lr.arrived+b.cfg.L2Latency > now {
			break // model the pipeline latency
		}
		r := lr.req
		if r.Kind == memdef.Write {
			// Writes allocate without fetch; they are not part of the
			// sampled data-read miss rate (the paper samples regular
			// data misses to gate the victim cache).
			b.input.PopFront()
			_, wbs := b.c.Write(r.Local)
			b.spill(wbs, r, now, mee)
			continue
		}
		switch b.c.Read(r.Local) {
		case cache.Hit:
			b.input.PopFront()
			b.sample(false)
			b.accessProbe(now, telemetry.EvL2Hit)
			respond(r, now)
		case cache.MissNew:
			b.input.PopFront()
			b.sample(true)
			b.accessProbe(now, telemetry.EvL2Miss)
			b.waiters.Add(uint64(memdef.SectorAddr(r.Local)), r)
			b.toMEE.Push(r)
		case cache.MissMerged:
			b.input.PopFront()
			b.sample(true)
			b.accessProbe(now, telemetry.EvL2Miss)
			b.waiters.Add(uint64(memdef.SectorAddr(r.Local)), r)
		case cache.Blocked:
			// No MSHR: leave at queue head and retry next cycle. This is
			// deliberate head-of-line blocking — younger requests behind
			// the blocked head must not bypass it, or response ordering
			// (and the L1s' fill/LRU interleaving) would change.
			return
		}
	}
}

// spill forwards dirty evicted sectors to the MEE as write-backs.
func (b *L2Bank) spill(wbs []cache.Writeback, template memdef.Request, now uint64, mee meePort) {
	for _, wb := range wbs {
		for s := 0; s < memdef.SectorsPerBlock; s++ {
			if wb.SectorMask&(1<<uint(s)) == 0 {
				continue
			}
			r := template
			r.Kind = memdef.Write
			r.Local = wb.BlockAddr + memdef.Addr(s*memdef.SectorSize)
			r.SM = -1
			b.toMEE.Push(r)
		}
	}
	_ = now
}

// onFill installs a sector returned by the MEE and releases its waiters.
func (b *L2Bank) onFill(local memdef.Addr, now uint64, mee meePort, respond func(memdef.Request, uint64)) {
	sector := memdef.SectorAddr(local)
	wbs, _ := b.c.Fill(sector)
	// Fills can evict dirty victims (e.g. from earlier writes).
	if len(wbs) > 0 {
		tmpl := memdef.Request{Partition: b.partition, Space: memdef.SpaceGlobal}
		b.spill(wbs, tmpl, now, mee)
	}
	b.waiters.Drain(uint64(sector), func(r memdef.Request) { //shm:alloc-ok drain callback capturing two words, built once per fill (not per waiter)
		respond(r, now)
	})
}

// Victim-cache hooks (metadata sectors live above the data address space in
// partition-local addressing, so tags never collide with data).

// PushVictim parks a metadata sector in the bank. Dirty data sectors the
// installation evicts are forwarded to the MEE like any other eviction.
func (b *L2Bank) PushVictim(addr memdef.Addr) {
	wbs, _ := b.c.Fill(addr)
	if len(wbs) > 0 {
		tmpl := memdef.Request{Partition: b.partition, Space: memdef.SpaceGlobal}
		b.spill(wbs, tmpl, 0, nil)
	}
	b.VictimPushes++
}

// ProbeVictim looks up and consumes a parked metadata sector.
func (b *L2Bank) ProbeVictim(addr memdef.Addr) bool {
	if b.c.Probe(addr) {
		b.c.CleanInvalidate(addr)
		b.VictimHits++
		return true
	}
	return false
}

// drained reports whether the bank holds no queued work.
func (b *L2Bank) drained() bool {
	return b.input.Len() == 0 && b.toMEE.Len() == 0 && b.waiters.Empty()
}

// nextEvent returns the earliest cycle after now at which this bank can make
// progress on its own: buffered MEE submissions retry every cycle, and the
// input head becomes issuable once its pipeline latency has elapsed. Waiters
// are woken by MEE fills, which the MEE's own horizon accounts for, so a
// bank with only waiters reports no self-driven event.
func (b *L2Bank) nextEvent(now uint64) uint64 {
	if b.toMEE.Len() > 0 {
		return now + 1
	}
	if b.input.Len() > 0 {
		if t := b.input.Front().arrived + b.cfg.L2Latency; t > now+1 {
			return t
		}
		return now + 1
	}
	return ^uint64(0)
}

// flushAll writes back every dirty sector at a kernel boundary, queuing the
// write-backs toward the MEE. The bank must be drained first.
func (b *L2Bank) flushAll() {
	tmpl := memdef.Request{Partition: b.partition, Space: memdef.SpaceGlobal}
	b.spill(b.c.FlushAll(), tmpl, 0, nil)
}
