package gpu

import (
	"testing"

	"shmgpu/internal/memdef"
)

// scriptProgram replays a fixed instruction list.
type scriptProgram struct {
	insts []MemInst
	comp  []int
	pos   int
}

func (p *scriptProgram) Next() (int, MemInst, bool) {
	if p.pos >= len(p.insts) {
		return 0, MemInst{}, true
	}
	i := p.pos
	p.pos++
	return p.comp[i], p.insts[i], false
}

// scriptWorkload hands every warp the same script.
type scriptWorkload struct {
	script func() *scriptProgram
}

func (w scriptWorkload) Name() string                        { return "script" }
func (w scriptWorkload) Kernels() int                        { return 1 }
func (w scriptWorkload) Setup(int) KernelSetup               { return KernelSetup{} }
func (w scriptWorkload) NewWarp(k, sm, warp int) WarpProgram { return w.script() }

func oneSMConfig() Config {
	cfg := DefaultConfig()
	cfg.SMs = 1
	cfg.WarpsPerSM = 2
	cfg.DeviceMemoryBytes = 12 << 20
	cfg.MaxCycles = 100_000
	return cfg
}

func mkRead(addr memdef.Addr) MemInst {
	return MemInst{Sectors: []memdef.Addr{addr}, Space: memdef.SpaceGlobal}
}

func TestSMExecutesComputeAndMemory(t *testing.T) {
	wl := scriptWorkload{script: func() *scriptProgram {
		return &scriptProgram{
			insts: []MemInst{mkRead(0), mkRead(4096)},
			comp:  []int{3, 2},
		}
	}}
	sys := NewSystem(oneSMConfig(), baselineOpts())
	res := sys.Run(wl)
	if !res.Completed {
		t.Fatal("script did not complete")
	}
	// 2 warps × (3+1 + 2+1) instructions.
	if res.Instructions != 2*(3+1+2+1) {
		t.Fatalf("instructions = %d, want 14", res.Instructions)
	}
}

func TestSMStallBubblesNotCounted(t *testing.T) {
	wl := scriptWorkload{script: func() *scriptProgram {
		return &scriptProgram{
			insts: []MemInst{{Stall: true}, {Stall: true}, mkRead(0)},
			comp:  []int{0, 0, 0},
		}
	}}
	res := NewSystem(oneSMConfig(), baselineOpts()).Run(wl)
	if res.Instructions != 2*1 {
		t.Fatalf("instructions = %d, want 2 (stalls must not count)", res.Instructions)
	}
}

func TestSMWritesArePosted(t *testing.T) {
	// A long write script must complete even though writes never get
	// responses (posted stores).
	var insts []MemInst
	var comp []int
	for i := 0; i < 50; i++ {
		insts = append(insts, MemInst{
			Sectors: []memdef.Addr{memdef.Addr(i * memdef.SectorSize)},
			Write:   true,
			Space:   memdef.SpaceGlobal,
		})
		comp = append(comp, 1)
	}
	wl := scriptWorkload{script: func() *scriptProgram {
		return &scriptProgram{insts: insts, comp: comp}
	}}
	res := NewSystem(oneSMConfig(), baselineOpts()).Run(wl)
	if !res.Completed {
		t.Fatal("posted writes blocked completion")
	}
	if res.Traffic.WriteBytes[0] == 0 {
		t.Fatal("no write traffic reached DRAM")
	}
}

func TestSMLoadLatencyHiding(t *testing.T) {
	// Two warps with independent loads should overlap their latencies:
	// total cycles well under 2x a serial execution.
	mkScript := func() *scriptProgram {
		var insts []MemInst
		var comp []int
		for i := 0; i < 20; i++ {
			insts = append(insts, mkRead(memdef.Addr(i*4096)))
			comp = append(comp, 0)
		}
		return &scriptProgram{insts: insts, comp: comp}
	}
	cfg := oneSMConfig()
	cfg.WarpsPerSM = 1
	serial := NewSystem(cfg, baselineOpts()).Run(scriptWorkload{script: mkScript})
	cfg2 := oneSMConfig()
	cfg2.WarpsPerSM = 8
	parallel := NewSystem(cfg2, baselineOpts()).Run(scriptWorkload{script: mkScript})
	// 8x the work in far less than 8x the time.
	if parallel.Cycles >= serial.Cycles*4 {
		t.Fatalf("no latency hiding: 1 warp %d cycles, 8 warps %d", serial.Cycles, parallel.Cycles)
	}
}

func TestSML1CachesRepeatedLoads(t *testing.T) {
	mkScript := func() *scriptProgram {
		var insts []MemInst
		var comp []int
		for i := 0; i < 10; i++ {
			insts = append(insts, mkRead(0x1000)) // same sector
			// Enough compute between loads for the first fill to land,
			// so later loads find the sector resident (loads are
			// non-blocking, so back-to-back repeats would merge into the
			// in-flight miss instead of hitting).
			comp = append(comp, 800)
		}
		return &scriptProgram{insts: insts, comp: comp}
	}
	res := NewSystem(oneSMConfig(), baselineOpts()).Run(scriptWorkload{script: mkScript})
	if res.L1.Hits == 0 {
		t.Fatal("no L1 hits on repeated loads")
	}
	// Only one sector must have traveled to DRAM.
	if got := res.Traffic.DataBytes(); got != memdef.SectorSize {
		t.Fatalf("DRAM data bytes = %d, want one sector", got)
	}
}

func TestSMWriteInvalidatesL1(t *testing.T) {
	// read A; write A; read A — the second read must not serve the stale
	// L1 copy (write-through with invalidate).
	mkScript := func() *scriptProgram {
		return &scriptProgram{
			insts: []MemInst{
				mkRead(0x2000),
				{Sectors: []memdef.Addr{0x2000}, Write: true, Space: memdef.SpaceGlobal},
				mkRead(0x2000),
			},
			comp: []int{0, 0, 0},
		}
	}
	cfg := oneSMConfig()
	cfg.WarpsPerSM = 1
	res := NewSystem(cfg, baselineOpts()).Run(scriptWorkload{script: mkScript})
	if !res.Completed {
		t.Fatal("did not complete")
	}
	// The second read must miss L1 (invalidated); it may hit in L2.
	if res.L1.Hits != 0 {
		t.Fatalf("L1 hits = %d; stale data served", res.L1.Hits)
	}
}
