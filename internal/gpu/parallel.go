package gpu

// The sharded parallel tick engine: Config.ParallelShards > 0 partitions
// each tick's work across a fixed worker pool while keeping results
// byte-identical to the sequential loop in system.go.
//
// # Shard topology
//
// The per-tick work splits on two axes into 2*S tasks for S shards:
//
//   - SM shards: contiguous SM index ranges. An SM's issue stage touches
//     only SM-local state (warps, L1, its own miss queue) and its fill
//     stage only its own L1/waiters, so SMs are embarrassingly parallel
//     once crossbar admission is taken out of the tick (see below).
//   - Partition shards: contiguous ranges of {2 L2 banks + MEE + DRAM
//     channel} partition stacks. Under the locality gate (below) a
//     partition's phases 2-5 form a closed system: requests arrive only
//     through its own toPart queue and leave only as buffered responses.
//
// # Barrier protocol (two-phase, per tick)
//
// Phase 1 (sequential): the telemetry sample boundary, the workload's
// frontier freeze (TickSynced), every SM's crossbar drain in SM order
// (admission depth depends on earlier SMs' same-tick drains, so it cannot
// shard), and freezing the matured prefix of the response ring.
//
// Phase 2 (forked): the 2*S shard tasks run on the pool. Each task
// computes against the previous phase's frozen queues; responses go to
// per-partition outboxes instead of the shared response ring, and probe
// events go to per-partition/per-shard telemetry buffers, so no shared
// state is written concurrently.
//
// Phase 3 (sequential, the deterministic exchange): matured responses are
// popped, outboxes are appended in fixed (phase-major, partition-
// ascending) order — the exact push order of the sequential loop — shard
// telemetry buffers are replayed in the same fixed order, and the
// shard-local event horizons are reduced to the global fast-forward jump.
//
// Because every cross-shard interaction happens in the sequential phases
// in a fixed order, message arrival order is independent of goroutine
// scheduling, which is the whole determinism argument.
//
// # Locality gate
//
// startParallel falls back to the sequential loop (engine not built) when
// the design routes metadata across partitions (opts.Enabled without
// LocalMetadata: sendMeta then targets foreign partitions mid-phase),
// when the runtime sanitizer is armed (invariant.Failf's handler is not
// safe to call from worker goroutines), or when XbarLatency is 0 (the
// frozen matured prefix relies on responses maturing strictly after the
// tick that pushed them).

import (
	"shmgpu/internal/invariant"
	"shmgpu/internal/memdef"
	"shmgpu/internal/pool"
	"shmgpu/internal/secmem"
	"shmgpu/internal/telemetry"
)

// Capture lanes: the within-tick phase a partition's captured telemetry
// events were emitted in. Replaying lane-major, partition-ascending
// reproduces the sequential loop's emission order (which runs each phase
// across all partitions before the next phase).
const (
	laneDelivery = iota // phase 2: crossbar → L2 enqueue
	laneBank            // phase 3: L2 bank ticks
	laneMEE             // phase 4: MEE ticks + L2 fills
	laneDRAM            // phase 5: DRAM ticks + MEE completions
	numPhaseLanes
)

// parEngine is the sharded tick engine for one System.
type parEngine struct {
	sys    *System
	pool   *pool.Pool
	shards int

	// smLo/smHi and partLo/partHi are the contiguous [lo,hi) index ranges
	// owned by each shard (possibly empty when shards exceed units).
	smLo, smHi     []int //shm:shard-bounds
	partLo, partHi []int //shm:shard-bounds

	// tasks are the 2*shards prebuilt closures handed to the pool every
	// tick: partition tasks first, then SM tasks (order is irrelevant —
	// they are mutually independent within a tick).
	tasks []func()
	// now is the cycle being ticked, published to the tasks before the
	// fork (the pool's channel handoff orders it).
	now uint64
	// matured is the frozen count of response-ring entries due this tick.
	matured int

	// outbox3/outbox4 buffer the tick's L2 read responses per partition:
	// outbox3 from the bank tick phase, outbox4 from the MEE fill phase.
	// The exchange appends them to the shared response ring in the
	// sequential loop's push order (all phase-3 partitions ascending, then
	// all phase-4). respond3/respond4 are the prebuilt per-partition
	// closures the bank/MEE phases emit through.
	outbox3, outbox4 [][]respEntry //shm:sharded
	respond3         []func(memdef.Request, uint64)
	respond4         []func(memdef.Request, uint64)

	// partProbes (per partition) and smProbes (per SM shard) buffer
	// telemetry when a collector is attached; nil otherwise.
	partProbes []*telemetry.ShardProbe //shm:sharded
	smProbes   []*telemetry.ShardProbe //shm:sharded

	// horizons collects each task's shard-local next-event cycle; the
	// reduction caches the global horizon for nextEventCycle.
	horizons   []uint64 //shm:sharded
	horizonFor uint64
	horizonMin uint64
	horizonOK  bool
}

// shardRanges splits n units into s contiguous [lo,hi) ranges.
func shardRanges(n, s int) (lo, hi []int) {
	lo = make([]int, s)
	hi = make([]int, s)
	for i := 0; i < s; i++ {
		lo[i] = i * n / s
		hi[i] = (i + 1) * n / s
	}
	return lo, hi
}

// startParallel builds the shard engine when the configuration asks for
// and permits it (see the locality gate above). Idempotent; called by Run
// and directly by tests that drive tickOnce.
func (s *System) startParallel() {
	if s.par != nil || s.cfg.ParallelShards <= 0 {
		return
	}
	if s.cfg.XbarLatency < 1 {
		return
	}
	if s.opts.Enabled && !s.opts.LocalMetadata {
		return
	}
	if invariant.Enabled() {
		return
	}
	s.par = newParEngine(s)
}

// stopParallel tears the engine down: pool workers exit and component
// probes are restored to the collector.
func (s *System) stopParallel() {
	if s.par == nil {
		return
	}
	s.par.pool.Close()
	s.par = nil
	s.AttachTelemetry(s.tele)
}

func newParEngine(s *System) *parEngine {
	e := &parEngine{sys: s, shards: s.cfg.ParallelShards}
	e.pool = pool.New(2 * e.shards)
	e.smLo, e.smHi = shardRanges(len(s.sms), e.shards)
	e.partLo, e.partHi = shardRanges(s.cfg.Partitions, e.shards)

	parts := s.cfg.Partitions
	e.outbox3 = make([][]respEntry, parts)
	e.outbox4 = make([][]respEntry, parts)
	e.respond3 = make([]func(memdef.Request, uint64), parts)
	e.respond4 = make([]func(memdef.Request, uint64), parts)
	for p := 0; p < parts; p++ {
		p := p
		e.respond3[p] = func(r memdef.Request, now uint64) {
			if r.SM < 0 {
				return
			}
			// outbox3[p] is partition p's private buffer; only p's task emits through this closure.
			e.outbox3[p] = append(e.outbox3[p], respEntry{phys: memdef.SectorAddr(r.Phys), sm: r.SM, at: now + s.cfg.XbarLatency}) //shm:shard-ok //shm:alloc-ok amortized per-partition buffer growth
		}
		e.respond4[p] = func(r memdef.Request, now uint64) {
			if r.SM < 0 {
				return
			}
			// outbox4[p] is partition p's private buffer; only p's task emits through this closure.
			e.outbox4[p] = append(e.outbox4[p], respEntry{phys: memdef.SectorAddr(r.Phys), sm: r.SM, at: now + s.cfg.XbarLatency}) //shm:shard-ok //shm:alloc-ok amortized per-partition buffer growth
		}
	}

	if s.tele != nil {
		capture := s.tele.Config().CaptureEvents
		e.partProbes = make([]*telemetry.ShardProbe, parts)
		for p := range e.partProbes {
			e.partProbes[p] = telemetry.NewShardProbe(numPhaseLanes, capture)
		}
		e.smProbes = make([]*telemetry.ShardProbe, e.shards)
		for k := range e.smProbes {
			e.smProbes[k] = telemetry.NewShardProbe(1, capture)
		}
		e.installProbes()
	}

	e.horizons = make([]uint64, 2*e.shards)
	e.tasks = make([]func(), 0, 2*e.shards)
	for k := 0; k < e.shards; k++ {
		k := k
		e.tasks = append(e.tasks, func() { e.partTask(k) })
	}
	for k := 0; k < e.shards; k++ {
		k := k
		e.tasks = append(e.tasks, func() { e.smTask(k) })
	}
	return e
}

// installProbes points every component at its shard buffer (stopParallel
// restores the collector via AttachTelemetry).
func (e *parEngine) installProbes() {
	s := e.sys
	for k := 0; k < e.shards; k++ {
		for i := e.smLo[k]; i < e.smHi[k]; i++ {
			s.sms[i].probe = e.smProbes[k]
		}
	}
	for p := range e.partProbes {
		probe := telemetry.Probe(e.partProbes[p])
		for _, b := range s.l2[p] {
			b.probe = probe
		}
		s.channels[p].SetProbe(probe, p)
		s.mees[p].SetProbe(probe)
	}
}

// flushCounters folds every shard buffer's counters and histograms into
// the collector (commutative, so shard order is irrelevant). Must run
// before the collector stamps counters: at sample boundaries and before
// FinishRun.
func (e *parEngine) flushCounters() {
	for _, sp := range e.smProbes {
		e.sys.tele.AbsorbCounts(sp)
	}
	for _, sp := range e.partProbes {
		e.sys.tele.AbsorbCounts(sp)
	}
}

// tick is the parallel tickOnce. See the file comment for the protocol.
func (e *parEngine) tick(now uint64) {
	s := e.sys

	// --- Phase 1: sequential pre-phase ---
	if s.tele != nil {
		if at := s.tele.NextSampleAt(); at != ^uint64(0) && now >= at {
			e.flushCounters()
		}
		s.tele.MaybeSample(now, s.snapFn)
	}
	s.tickNow = now

	// The host tier completes due page migrations before the crossbar
	// drains — the same position the sequential loop ticks it at, so
	// fault replays admit on identical cycles.
	if s.uvm != nil {
		s.uvm.tick(now)
	}

	// Crossbar admission in SM order: each drain sees the partition queue
	// depths left by earlier SMs' drains, exactly as the sequential loop
	// interleaves them (issue never touches the crossbar, so hoisting the
	// drains out of sm.tick is exact).
	for _, sm := range s.sms {
		sm.drainMisses(s.acceptFn)
	}

	// Freeze the matured response prefix. Responses pushed this tick
	// mature at now+XbarLatency >= now+1 (the gate requires latency >= 1),
	// so the frozen prefix equals what the sequential loop's phase 6 would
	// see after phases 2-5.
	e.matured = 0
	for e.matured < s.toSM.Len() && s.toSM.At(e.matured).at <= now {
		e.matured++
	}
	e.now = now
	e.horizonOK = false

	// --- Phase 2: forked shard tasks ---
	e.pool.Run(e.tasks)

	// --- Phase 3: deterministic exchange ---
	for i := 0; i < e.matured; i++ {
		s.toSM.PopFront()
	}
	for p := range e.outbox3 {
		for _, r := range e.outbox3[p] {
			s.toSM.Push(r)
		}
		e.outbox3[p] = e.outbox3[p][:0]
	}
	for p := range e.outbox4 {
		for _, r := range e.outbox4[p] {
			s.toSM.Push(r)
		}
		e.outbox4[p] = e.outbox4[p][:0]
	}
	if s.tele != nil {
		e.replayCaptures()
	}
	if !s.cfg.DisableFastForward {
		e.reduceHorizon(now)
	}
}

// smTask runs shard k's SMs: the issue stage, then delivery of the tick's
// matured fills to owned SMs. Issue precedes fills per SM exactly as
// phases 1 and 6 order them sequentially; fills for one SM are applied in
// ring order (L1 LRU state makes that order load-bearing), and fills
// never touch other SMs or emit probe events.
//
//shm:fork-root
func (e *parEngine) smTask(k int) {
	s := e.sys
	now := e.now
	lo, hi := e.smLo[k], e.smHi[k]
	for i := lo; i < hi; i++ {
		s.sms[i].issueTick(now)
	}
	for j := 0; j < e.matured; j++ {
		en := s.toSM.At(j)
		if en.sm >= lo && en.sm < hi {
			s.sms[en.sm].onFill(en.phys, now)
		}
	}
	if s.cfg.DisableFastForward {
		e.horizons[e.shards+k] = ^uint64(0)
		return
	}
	next := ^uint64(0)
	for i := lo; i < hi; i++ {
		if v := s.sms[i].nextEvent(now); v < next {
			next = v
		}
	}
	e.horizons[e.shards+k] = next
}

// partTask runs shard k's partition stacks through phases 2-5. Running
// one partition's phases back to back (instead of phase-major across all
// partitions) is equivalent because, under the locality gate, partitions
// interact only through the buffered outboxes and their own queues.
//
//shm:fork-root
func (e *parEngine) partTask(k int) {
	s := e.sys
	now := e.now
	ff := !s.cfg.DisableFastForward
	next := ^uint64(0)
	for p := e.partLo[k]; p < e.partHi[k]; p++ {
		var probe *telemetry.ShardProbe
		if e.partProbes != nil {
			probe = e.partProbes[p]
		}

		// Phase 2: crossbar delivers matured requests, with the same
		// intentional head-of-line blocking as the sequential loop.
		if probe != nil {
			probe.SetLane(laneDelivery)
		}
		q := &s.toPart[p]
		for q.Len() > 0 && q.Front().at <= now {
			front := q.Front()
			bank := s.l2[p][s.bankOf(front.r.Local)]
			if !bank.enqueue(front.r, now) {
				break
			}
			q.PopFront()
		}

		// Phase 3: L2 banks process requests, forwarding misses to the MEE.
		if probe != nil {
			probe.SetLane(laneBank)
		}
		mee := s.mees[p]
		for _, bank := range s.l2[p] {
			bank.tick(now, mee, e.respond3[p])
		}

		// Phase 4: the MEE advances; completed reads fill the L2 banks.
		if probe != nil {
			probe.SetLane(laneMEE)
		}
		for _, r := range mee.Tick(now) {
			s.l2[p][s.bankOf(r.Local)].onFill(r.Local, now, mee, e.respond4[p])
		}

		// Phase 5: the DRAM channel advances; completions return to the
		// owning MEE — which the locality gate guarantees is this
		// partition's (foreign owners only arise from cross-partition
		// metadata routing, which disables the engine).
		if probe != nil {
			probe.SetLane(laneDRAM)
		}
		for _, done := range s.channels[p].Tick(now) {
			owner := secmem.TokenOwner(done.Token)
			if owner != p {
				panic("gpu: cross-partition DRAM completion under the parallel engine's locality gate")
			}
			s.mees[owner].OnDRAMComplete(done.Token, now)
		}

		if ff {
			if q.Len() > 0 {
				v := q.Front().at
				if v < now+1 {
					v = now + 1
				}
				if v < next {
					next = v
				}
			}
			for _, b := range s.l2[p] {
				if v := b.nextEvent(now); v < next {
					next = v
				}
			}
			if v := mee.NextEvent(now); v < next {
				next = v
			}
			if v := s.channels[p].NextEvent(now); v < next {
				next = v
			}
		}
	}
	if !ff {
		next = ^uint64(0)
	}
	e.horizons[k] = next
}

// replayCaptures appends the tick's buffered capture-worthy events to the
// collector's trace in the sequential loop's emission order: SM shards
// first (phase 1 precedes the partition phases; SM kinds are not
// currently capture-worthy, so this is future-proofing), then lane-major,
// partition-ascending. Counters are left in the shard buffers until the
// next sample boundary.
func (e *parEngine) replayCaptures() {
	any := false
	for _, sp := range e.smProbes {
		if sp.HasCaptures() {
			any = true
			break
		}
	}
	if !any {
		for _, sp := range e.partProbes {
			if sp.HasCaptures() {
				any = true
				break
			}
		}
	}
	if !any {
		return
	}
	c := e.sys.tele
	for _, sp := range e.smProbes {
		c.AbsorbLane(sp, 0)
	}
	for lane := 0; lane < numPhaseLanes; lane++ {
		for _, sp := range e.partProbes {
			c.AbsorbLane(sp, lane)
		}
	}
}

// reduceHorizon folds the shard-local horizons, the response ring's front
// and the sampler's next due cycle into the global event horizon, cached
// for nextEventCycle (which advanceCycle calls right after the tick).
func (e *parEngine) reduceHorizon(now uint64) {
	s := e.sys
	next := ^uint64(0)
	for _, h := range e.horizons {
		if h < next {
			next = h
		}
	}
	if s.toSM.Len() > 0 {
		v := s.toSM.Front().at
		if v < now+1 {
			v = now + 1
		}
		if v < next {
			next = v
		}
	}
	if s.uvm != nil {
		if v := s.uvm.tier.NextEvent(now); v < next {
			next = v
		}
	}
	if s.tele != nil {
		if at := s.tele.NextSampleAt(); at != ^uint64(0) && at < next {
			if at < now+1 {
				at = now + 1
			}
			if at < next {
				next = at
			}
		}
	}
	e.horizonFor = now
	e.horizonMin = next
	e.horizonOK = true
}
