package gpu

import (
	"fmt"
	"hash/fnv"

	"shmgpu/internal/flatmap"
	"shmgpu/internal/memdef"
	"shmgpu/internal/ringbuf"
	"shmgpu/internal/snapshot"
)

// Checkpoint/restore for the whole System. The capture point is a paused
// RunUntil: the System sits at a kernel-interior tick boundary, which is
// the only place every component's transient state is fully observable
// (per-tick scratch like dram doneBuf or the MEE's response buffer is
// empty between ticks). The restore target must be a freshly built
// NewSystem whose configuration matches the snapshot's fingerprint up to
// the execution-strategy knobs (ParallelShards, DisableFastForward) that
// are proven byte-neutral by the equivalence corpus — forking one warmed
// parent across those knobs is the whole point. Cold path only.

// StatefulWorkload is the optional Workload extension checkpointing
// requires: the workload captures its cross-warp state (e.g. the pacing
// frontier) and restores it into a freshly built instance of the same
// spec.
type StatefulWorkload interface {
	Workload
	SaveState(*snapshot.Encoder)
	LoadState(*snapshot.Decoder) error
}

// StatefulWarpProgram is the per-warp analogue: LoadState fast-forwards a
// freshly created program (wl.NewWarp) to the captured position.
type StatefulWarpProgram interface {
	WarpProgram
	SaveState(*snapshot.Encoder)
	LoadState(*snapshot.Decoder) error
}

// fingerprint hashes the configuration a snapshot is only valid for:
// everything in Config and the secure-memory design except the
// execution-strategy knobs children are allowed to vary. MEETune is a
// func (it would hash as a pointer), so the tuned partition-0 MEE config
// stands in for it.
func (s *System) fingerprint(wlName string) uint64 {
	c := s.cfg
	c.ParallelShards = 0
	c.DisableFastForward = false
	c.MEETune = nil
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%+v|%+v|%s", c, s.opts, s.mees[0].Config(), wlName)
	return h.Sum64()
}

func saveMemInst(e *snapshot.Encoder, mi *MemInst) {
	e.Int(len(mi.Sectors))
	for _, a := range mi.Sectors {
		e.U64(uint64(a))
	}
	e.Bool(mi.Write)
	e.U8(uint8(mi.Space))
	e.Bool(mi.Stall)
}

func loadMemInst(d *snapshot.Decoder, mi *MemInst) error {
	n := d.Len()
	if err := d.Err(); err != nil {
		return err
	}
	mi.Sectors = nil
	if n > 0 {
		mi.Sectors = make([]memdef.Addr, n)
		for i := range mi.Sectors {
			mi.Sectors[i] = memdef.Addr(d.U64())
		}
	}
	mi.Write = d.Bool()
	mi.Space = memdef.Space(d.U8())
	mi.Stall = d.Bool()
	return d.Err()
}

func (s *SM) saveState(e *snapshot.Encoder) error {
	e.Int(s.lastWarp)
	e.U64(s.Instructions)
	e.U64(s.Loads)
	e.U64(s.Stores)
	s.l1.SaveState(e)
	flatmap.SaveMultiMap(e, &s.l1Waiters, func(e *snapshot.Encoder, v *int32) {
		e.I32(*v)
	})
	ringbuf.Save(e, &s.missQueue, func(e *snapshot.Encoder, r *smRequest) {
		e.U64(uint64(r.addr))
		e.Bool(r.write)
		e.U8(uint8(r.space))
		e.Int(r.sm)
		e.Int(r.warp)
	})
	e.Int(len(s.warps))
	for w := range s.warps {
		ws := &s.warps[w]
		e.Int(ws.computeLeft)
		saveMemInst(e, &ws.pendingMem)
		e.Bool(ws.haveMem)
		e.Int(ws.outstanding)
		e.U64(ws.readyAt)
		e.Bool(ws.done)
		prog, ok := ws.prog.(StatefulWarpProgram)
		if !ok {
			return fmt.Errorf("gpu: sm %d warp %d program (%T) is not snapshottable", s.id, w, ws.prog)
		}
		prog.SaveState(e)
	}
	return nil
}

// loadState restores an SM; warp programs are rebuilt via wl.NewWarp for
// kernel and immediately fast-forwarded from the stream.
func (s *SM) loadState(d *snapshot.Decoder, wl Workload, kernel int) error {
	s.lastWarp = d.Int()
	s.Instructions = d.U64()
	s.Loads = d.U64()
	s.Stores = d.U64()
	if err := s.l1.LoadState(d); err != nil {
		return err
	}
	err := flatmap.LoadMultiMap(d, &s.l1Waiters, func(d *snapshot.Decoder, v *int32) {
		*v = d.I32()
	})
	if err != nil {
		return err
	}
	err = ringbuf.Load(d, &s.missQueue, func(d *snapshot.Decoder, r *smRequest) {
		r.addr = memdef.Addr(d.U64())
		r.write = d.Bool()
		r.space = memdef.Space(d.U8())
		r.sm = d.Int()
		r.warp = d.Int()
	})
	if err != nil {
		return err
	}
	nWarps := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nWarps != s.cfg.WarpsPerSM {
		return fmt.Errorf("gpu: sm %d snapshot has %d warps, config has %d", s.id, nWarps, s.cfg.WarpsPerSM)
	}
	s.warps = make([]warpState, nWarps)
	for w := range s.warps {
		ws := &s.warps[w]
		ws.computeLeft = d.Int()
		if err := loadMemInst(d, &ws.pendingMem); err != nil {
			return err
		}
		ws.haveMem = d.Bool()
		ws.outstanding = d.Int()
		ws.readyAt = d.U64()
		ws.done = d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		prog, ok := wl.NewWarp(kernel, s.id, w).(StatefulWarpProgram)
		if !ok {
			return fmt.Errorf("gpu: sm %d warp %d program is not snapshottable", s.id, w)
		}
		if err := prog.LoadState(d); err != nil {
			return err
		}
		ws.prog = prog
	}
	return d.Err()
}

func (b *L2Bank) saveState(e *snapshot.Encoder) {
	b.c.SaveState(e)
	flatmap.SaveMultiMap(e, &b.waiters, func(e *snapshot.Encoder, r *memdef.Request) {
		r.SaveState(e)
	})
	ringbuf.Save(e, &b.input, func(e *snapshot.Encoder, lr *l2Request) {
		lr.req.SaveState(e)
		e.U64(lr.arrived)
	})
	ringbuf.Save(e, &b.toMEE, func(e *snapshot.Encoder, r *memdef.Request) {
		r.SaveState(e)
	})
	e.U64(b.sampleAccesses)
	e.U64(b.sampleMisses)
	e.F64(b.sampledRate)
	e.Bool(b.haveSample)
	e.U64(b.VictimHits)
	e.U64(b.VictimPushes)
}

func (b *L2Bank) loadState(d *snapshot.Decoder) error {
	if err := b.c.LoadState(d); err != nil {
		return err
	}
	err := flatmap.LoadMultiMap(d, &b.waiters, func(d *snapshot.Decoder, r *memdef.Request) {
		r.LoadState(d)
	})
	if err != nil {
		return err
	}
	err = ringbuf.Load(d, &b.input, func(d *snapshot.Decoder, lr *l2Request) {
		lr.req.LoadState(d)
		lr.arrived = d.U64()
	})
	if err != nil {
		return err
	}
	err = ringbuf.Load(d, &b.toMEE, func(d *snapshot.Decoder, r *memdef.Request) {
		r.LoadState(d)
	})
	if err != nil {
		return err
	}
	b.sampleAccesses = d.U64()
	b.sampleMisses = d.U64()
	b.sampledRate = d.F64()
	b.haveSample = d.Bool()
	b.VictimHits = d.U64()
	b.VictimPushes = d.U64()
	return d.Err()
}

// SaveState captures the complete simulator state at a paused RunUntil
// boundary. wl must be the workload the run was driving. A run that was
// never paused mid-kernel, or that was cancelled (e.g. by the stall
// watchdog), has nothing coherent to capture and errors out — a cancelled
// cell must never leave a loadable snapshot behind.
func (s *System) SaveState(e *snapshot.Encoder, wl Workload) error {
	if !s.midKernel {
		return fmt.Errorf("gpu: SaveState requires a run paused mid-kernel (use RunUntil)")
	}
	if s.cancelled {
		return fmt.Errorf("gpu: refusing to snapshot a cancelled run")
	}
	swl, ok := wl.(StatefulWorkload)
	if !ok {
		return fmt.Errorf("gpu: workload %T is not snapshottable", wl)
	}
	if s.par != nil && s.tele != nil {
		// Shard counter buffers must fold into the collector before its
		// state is captured (event captures are replayed every tick, so
		// only counters are outstanding between ticks).
		s.par.flushCounters()
	}

	e.U64(s.fingerprint(wl.Name()))
	e.U64(s.cycle)
	e.U64(s.instr)
	e.Int(s.kernelIdx)
	e.U64(s.runDeadline)

	e.Int(len(s.sms))
	for _, sm := range s.sms {
		if err := sm.saveState(e); err != nil {
			return err
		}
	}
	e.Int(len(s.toPart))
	for p := range s.toPart {
		ringbuf.Save(e, &s.toPart[p], func(e *snapshot.Encoder, x *xbarEntry) {
			x.r.SaveState(e)
			e.U64(x.at)
		})
	}
	ringbuf.Save(e, &s.toSM, func(e *snapshot.Encoder, r *respEntry) {
		e.U64(uint64(r.phys))
		e.Int(r.sm)
		e.U64(r.at)
	})
	e.Int(len(s.l2))
	for p := range s.l2 {
		e.Int(len(s.l2[p]))
		for _, b := range s.l2[p] {
			b.saveState(e)
		}
	}
	for _, mee := range s.mees {
		mee.SaveState(e)
	}
	for _, ch := range s.channels {
		ch.SaveState(e)
	}
	// Host-tier presence is fully determined by cfg.HostTier, which the
	// fingerprint covers, so the blob needs no presence marker.
	if s.uvm != nil {
		s.uvm.tier.SaveState(e)
		e.U64(s.uvm.roTransitions)
	}
	swl.SaveState(e)
	e.Bool(s.tele != nil)
	if s.tele != nil {
		s.tele.SaveState(e)
	}
	return nil
}

// LoadState restores a snapshot into a freshly built System. wl must be a
// fresh instance of the captured workload (same spec and seed); if the
// parent run had a telemetry collector attached, an equally configured
// collector must be attached before loading. The workload's state loads
// last: SM restore rebuilds warp programs via NewWarp, which repopulates
// shared workload state (e.g. the pacing frontier) as a side effect, and
// the final workload load overwrites all of it with the captured values.
func (s *System) LoadState(d *snapshot.Decoder, wl Workload) error {
	swl, ok := wl.(StatefulWorkload)
	if !ok {
		return fmt.Errorf("gpu: workload %T is not snapshottable", wl)
	}
	fp := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if want := s.fingerprint(wl.Name()); fp != want {
		return fmt.Errorf("gpu: snapshot was taken on a different configuration or workload (fingerprint %#x, this system %#x)", fp, want)
	}
	s.cycle = d.U64()
	s.instr = d.U64()
	s.kernelIdx = d.Int()
	s.runDeadline = d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if s.kernelIdx < 0 || s.kernelIdx >= wl.Kernels() {
		return fmt.Errorf("gpu: snapshot kernel index %d out of range (%d kernels)", s.kernelIdx, wl.Kernels())
	}
	s.midKernel = true
	s.cancelled = false
	if ga, ok := wl.(GridAware); ok {
		ga.SetGrid(s.cfg.SMs, s.cfg.WarpsPerSM)
	}

	nSMs := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nSMs != len(s.sms) {
		return fmt.Errorf("gpu: snapshot has %d SMs, this system has %d", nSMs, len(s.sms))
	}
	for _, sm := range s.sms {
		if err := sm.loadState(d, wl, s.kernelIdx); err != nil {
			return err
		}
	}
	nParts := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nParts != len(s.toPart) {
		return fmt.Errorf("gpu: snapshot has %d partitions, this system has %d", nParts, len(s.toPart))
	}
	for p := range s.toPart {
		err := ringbuf.Load(d, &s.toPart[p], func(d *snapshot.Decoder, x *xbarEntry) {
			x.r.LoadState(d)
			x.at = d.U64()
		})
		if err != nil {
			return err
		}
	}
	err := ringbuf.Load(d, &s.toSM, func(d *snapshot.Decoder, r *respEntry) {
		r.phys = memdef.Addr(d.U64())
		r.sm = d.Int()
		r.at = d.U64()
	})
	if err != nil {
		return err
	}
	nL2Parts := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nL2Parts != len(s.l2) {
		return fmt.Errorf("gpu: snapshot has %d L2 partitions, this system has %d", nL2Parts, len(s.l2))
	}
	for p := range s.l2 {
		nBanks := d.Int()
		if err := d.Err(); err != nil {
			return err
		}
		if nBanks != len(s.l2[p]) {
			return fmt.Errorf("gpu: snapshot partition %d has %d L2 banks, this system has %d", p, nBanks, len(s.l2[p]))
		}
		for _, b := range s.l2[p] {
			if err := b.loadState(d); err != nil {
				return err
			}
		}
	}
	for _, mee := range s.mees {
		if err := mee.LoadState(d); err != nil {
			return err
		}
	}
	for _, ch := range s.channels {
		if err := ch.LoadState(d); err != nil {
			return err
		}
	}
	if s.cfg.HostTier {
		// The fingerprint guarantees the snapshot was captured with the
		// same tier geometry; build the tier then restore its state.
		s.startUVM(wl)
		s.uvm.tier.LoadState(d)
		s.uvm.roTransitions = d.U64()
		if err := d.Err(); err != nil {
			return err
		}
	}
	if err := swl.LoadState(d); err != nil {
		return err
	}
	hadTele := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hadTele != (s.tele != nil) {
		return fmt.Errorf("gpu: snapshot telemetry mismatch (captured with collector: %v, this system: %v)", hadTele, s.tele != nil)
	}
	if s.tele != nil {
		if err := s.tele.LoadState(d); err != nil {
			return err
		}
	}
	return d.Err()
}
