package gpu

import (
	"testing"

	"shmgpu/internal/memdef"
)

// twoBankAddrs finds two physical block addresses that route to the same
// partition but different L2 banks.
func twoBankAddrs(s *System) (a, b memdef.Addr, part int) {
	pa, la := s.pmap.ToLocal(0)
	bankA := s.bankOf(la)
	for addr := memdef.Addr(memdef.BlockSize); addr < 1<<20; addr += memdef.BlockSize {
		p, l := s.pmap.ToLocal(addr)
		if p == pa && s.bankOf(l) != bankA {
			return 0, addr, pa
		}
	}
	panic("no second bank found in the first 1 MB")
}

// TestXbarBackpressureDepth pins the crossbar admission rule: a partition
// queue accepts exactly XbarQueueDepth requests, then back-pressures the SMs
// (acceptRequest returns false) until delivery makes room. The depth is
// configuration, not a hardcoded constant.
func TestXbarBackpressureDepth(t *testing.T) {
	for _, depth := range []int{4, 64} {
		cfg := smallConfig()
		cfg.XbarQueueDepth = depth
		s := NewSystem(cfg, baselineOpts())
		r := smRequest{addr: 0, space: memdef.SpaceGlobal, sm: 0, warp: 0}
		for i := 0; i < depth; i++ {
			if !s.acceptRequest(r) {
				t.Fatalf("depth=%d: request %d rejected below capacity", depth, i)
			}
		}
		if s.acceptRequest(r) {
			t.Errorf("depth=%d: request %d accepted beyond capacity", depth, depth)
		}
		part, _ := s.pmap.ToLocal(r.addr)
		if got := s.toPart[part].Len(); got != depth {
			t.Errorf("depth=%d: queue holds %d entries, want %d", depth, got, depth)
		}
	}
}

// TestXbarQueueDepthValidation pins that a non-positive depth is a
// configuration error rather than a silently wedged crossbar.
func TestXbarQueueDepthValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.XbarQueueDepth = 0
	if err := cfg.Validate(); err == nil {
		t.Error("XbarQueueDepth=0 passed Validate; a zero-depth crossbar can never accept a request")
	}
}

// TestXbarMaturityGate pins the interconnect latency: an accepted request is
// not delivered to its L2 bank before XbarLatency cycles have elapsed, and is
// delivered once they have.
func TestXbarMaturityGate(t *testing.T) {
	cfg := smallConfig()
	s := NewSystem(cfg, baselineOpts())
	r := smRequest{addr: 0, space: memdef.SpaceGlobal, sm: -1, warp: 0}
	s.tickNow = 0
	if !s.acceptRequest(r) {
		t.Fatal("empty queue rejected a request")
	}
	part, _ := s.pmap.ToLocal(r.addr)

	s.tickOnce(cfg.XbarLatency - 1)
	if s.toPart[part].Len() != 1 {
		t.Fatalf("request delivered %d cycles early", 1)
	}
	s.tickOnce(cfg.XbarLatency)
	if s.toPart[part].Len() != 0 {
		t.Error("matured request not delivered at cycle XbarLatency")
	}
}

// TestXbarHeadOfLineBlocking pins the crossbar's FIFO-link semantics: when
// the head entry's target bank is full, delivery stops for the whole
// partition queue — a younger matured request must wait behind the blocked
// head even though its own (different) target bank has room. The crossbar
// port is a FIFO link, not a router; reordering around a blocked head would
// change miss interleaving everywhere.
func TestXbarHeadOfLineBlocking(t *testing.T) {
	cfg := smallConfig()
	s := NewSystem(cfg, baselineOpts())
	addrA, addrB, part := twoBankAddrs(s)

	// Fill bank A's input queue to capacity so the head can't deliver.
	_, localA := s.pmap.ToLocal(addrA)
	bankA := s.l2[part][s.bankOf(localA)]
	for i := 0; bankA.canAccept(); i++ {
		bankA.enqueue(memdef.Request{Phys: addrA, Local: localA, Partition: part,
			Kind: memdef.Read, Space: memdef.SpaceGlobal, SM: -1}, 0)
	}

	s.tickNow = 0
	if !s.acceptRequest(smRequest{addr: addrA, space: memdef.SpaceGlobal, sm: -1}) {
		t.Fatal("head request rejected")
	}
	if !s.acceptRequest(smRequest{addr: addrB, space: memdef.SpaceGlobal, sm: -1}) {
		t.Fatal("younger request rejected")
	}

	_, localB := s.pmap.ToLocal(addrB)
	bankB := s.l2[part][s.bankOf(localB)]
	if !bankB.canAccept() {
		t.Fatal("bank B unexpectedly full; test cannot distinguish HoL blocking")
	}

	// Both entries matured; head's bank is full at delivery time, so neither
	// may leave the queue — the younger one is blocked behind the head.
	s.tickOnce(cfg.XbarLatency)
	if got := s.toPart[part].Len(); got != 2 {
		t.Errorf("after blocked-head tick, queue holds %d entries, want 2 (head-of-line blocking)", got)
	}
}
