package gpu

import (
	"testing"

	"shmgpu/internal/memdef"
	"shmgpu/internal/obs"
	"shmgpu/internal/secmem"
)

// fixedWorkload is a streaming workload whose warp programs never allocate:
// each warp owns a fixed sector array and returns a slice of it from Next.
// That is safe against the simulator because issueMem consumes MemInst.Sectors
// before the SM calls advance() again, so the array is never aliased across
// two live instructions.
type fixedWorkload struct {
	bufBytes uint64
	compute  int
	insts    int
}

func (w *fixedWorkload) Name() string { return "fixed-stream" }
func (w *fixedWorkload) Kernels() int { return 1 }

// Footprint lets the UVM host tier size its page table to the actual
// working set (the oversubscribed alloc cases depend on it).
func (w *fixedWorkload) Footprint() uint64 { return w.bufBytes }

func (w *fixedWorkload) Setup(k int) KernelSetup {
	return KernelSetup{
		CopyRanges: []AddrRange{{0, memdef.Addr(w.bufBytes)}},
		StreamTruths: []StreamTruth{
			{Range: AddrRange{0, memdef.Addr(w.bufBytes)}, Streaming: true},
		},
	}
}

type fixedWarp struct {
	w       *fixedWorkload
	cursor  memdef.Addr
	step    memdef.Addr
	limit   memdef.Addr
	issued  int
	sectors [memdef.SectorsPerBlock]memdef.Addr
}

func (w *fixedWorkload) NewWarp(kernel, sm, warp int) WarpProgram {
	const smCount, warpCount = 4, 8 // matches smallConfig
	idx := uint64(sm*warpCount + warp)
	total := uint64(smCount * warpCount)
	return &fixedWarp{
		w:      w,
		cursor: memdef.Addr(idx * memdef.BlockSize),
		step:   memdef.Addr(total * memdef.BlockSize),
		limit:  memdef.Addr(w.bufBytes),
	}
}

func (p *fixedWarp) Next() (int, MemInst, bool) {
	if p.issued >= p.w.insts || p.cursor >= p.limit {
		return 0, MemInst{}, true
	}
	p.issued++
	base := p.cursor
	p.cursor += p.step
	for i := range p.sectors {
		p.sectors[i] = base + memdef.Addr(i*memdef.SectorSize)
	}
	return p.w.compute, MemInst{Sectors: p.sectors[:], Space: memdef.SpaceGlobal}, false
}

// steadyState builds a system mid-kernel: the kernel is launched and warmed
// long enough that every pool, ring buffer, and table has reached its
// steady-state capacity. shards > 0 runs the warm-up and measurement under
// the sharded parallel engine (its outboxes and shard buffers must likewise
// reach capacity during warm-up, not grow per tick).
// oversub > 0 additionally enables the UVM host tier at that ratio, so
// the measured ticks cover the fault/replay/migration path too.
func steadyState(t *testing.T, opts secmem.Options, shards int, oversub float64, prefetch string) *System {
	t.Helper()
	cfg := smallConfig()
	cfg.ParallelShards = shards
	if oversub > 0 {
		cfg.HostTier = true
		cfg.OversubRatio = oversub
		cfg.UVMPCIeBytesPerCycle = 256
		cfg.UVMPrefetch = prefetch
	}
	wl := &fixedWorkload{bufBytes: 40 << 20, compute: 4, insts: 20_000}
	s := NewSystem(cfg, opts)
	s.applySetup(0, wl.Setup(0))
	s.startUVM(wl)
	for _, sm := range s.sms {
		sm.launch(0, wl)
	}
	s.startParallel()
	t.Cleanup(s.stopParallel)
	if shards > 0 && s.par == nil {
		t.Fatal("parallel engine did not start; measurement would cover the sequential loop")
	}
	for i := 0; i < 30_000; i++ {
		s.tickOnce(s.cycle)
		s.cycle++
	}
	if s.smsFinished() {
		t.Fatal("workload finished during warm-up; steady-state measurement is vacuous")
	}
	return s
}

// TestTickSteadyStateAllocFree pins the tentpole's allocation-free hot path:
// once warm, a cycle of the full system (SMs, crossbar, L2 banks, MEEs, DRAM
// channels) must perform zero heap allocations, for the insecure baseline and
// for every secure-memory mechanism combination. Regressions here are how
// per-cycle garbage (map churn, queue re-slicing, scratch slices) sneaks back
// into the simulator.
func TestTickSteadyStateAllocFree(t *testing.T) {
	shmOpts := secmem.Options{
		Enabled: true, LocalMetadata: true, SectoredMetadata: true,
		ReadOnlyOpt: true, DualGranMAC: true,
	}
	cases := []struct {
		name     string
		opts     secmem.Options
		shards   int
		observed bool
		oversub  float64
		prefetch string
	}{
		{"Baseline", secmem.Options{}, 0, false, 0, ""},
		{"Naive", secmem.Options{Enabled: true}, 0, false, 0, ""},
		{"PSSM", secmem.Options{Enabled: true, LocalMetadata: true, SectoredMetadata: true}, 0, false, 0, ""},
		{"SHM", shmOpts, 0, false, 0, ""},
		// The sharded engine must be allocation-free too: shard scratch
		// (outboxes, horizons, pool batches) is preallocated, not per-tick.
		{"Baseline/shards=4", secmem.Options{}, 4, false, 0, ""},
		{"SHM/shards=4", shmOpts, 4, false, 0, ""},
		// The live ops plane must honour the same contract: a progress
		// heartbeat is one comparison per tick plus an atomic store per
		// interval, never an allocation.
		{"SHM/observed", shmOpts, 0, true, 0, ""},
		// The UVM host tier is preallocated at construction: neither the
		// non-faulting admit path (ratio ≥ 1.0, everything resident) nor
		// the fault/replay/eviction/migration machinery itself (ratio
		// 0.5, faulting throughout the measurement) may allocate, under
		// either engine.
		{"SHM/oversub-fit", shmOpts, 0, false, 1.5, ""},
		{"SHM/oversub=0.5", shmOpts, 0, false, 0.5, ""},
		{"SHM/oversub=0.5/shards=4", shmOpts, 4, false, 0.5, ""},
		// The migration-ahead engine reuses the same preallocated
		// structures: fault-stream tables are fixed arrays, prefetch
		// candidates coalesce into the existing migration ring, and the
		// lazy eviction heap is sized at construction — prefetching on
		// the hot path must not allocate either.
		{"SHM/oversub=0.5/stride", shmOpts, 0, false, 0.5, "stride"},
		{"SHM/oversub=0.5/stream", shmOpts, 0, false, 0.5, "stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := steadyState(t, tc.opts, tc.shards, tc.oversub, tc.prefetch)
			if tc.observed {
				p, err := obs.Start(obs.Options{Tool: "alloc-test"})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { p.Close() })
				r := p.BeginRun("steady")
				t.Cleanup(func() { r.Done(s.cycle, false) })
				s.SetObserver(r, 0)
			}
			allocs := testing.AllocsPerRun(5000, func() {
				s.tickOnce(s.cycle)
				s.cycle++
			})
			if allocs != 0 {
				t.Errorf("steady-state tick allocates %.2f times per cycle, want 0", allocs)
			}
			if s.smsFinished() {
				t.Error("workload finished during measurement; steady-state measurement is vacuous")
			}
		})
	}
}
