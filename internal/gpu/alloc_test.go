package gpu

import (
	"testing"

	"shmgpu/internal/memdef"
	"shmgpu/internal/secmem"
)

// fixedWorkload is a streaming workload whose warp programs never allocate:
// each warp owns a fixed sector array and returns a slice of it from Next.
// That is safe against the simulator because issueMem consumes MemInst.Sectors
// before the SM calls advance() again, so the array is never aliased across
// two live instructions.
type fixedWorkload struct {
	bufBytes uint64
	compute  int
	insts    int
}

func (w *fixedWorkload) Name() string { return "fixed-stream" }
func (w *fixedWorkload) Kernels() int { return 1 }

func (w *fixedWorkload) Setup(k int) KernelSetup {
	return KernelSetup{
		CopyRanges: []AddrRange{{0, memdef.Addr(w.bufBytes)}},
		StreamTruths: []StreamTruth{
			{Range: AddrRange{0, memdef.Addr(w.bufBytes)}, Streaming: true},
		},
	}
}

type fixedWarp struct {
	w       *fixedWorkload
	cursor  memdef.Addr
	step    memdef.Addr
	limit   memdef.Addr
	issued  int
	sectors [memdef.SectorsPerBlock]memdef.Addr
}

func (w *fixedWorkload) NewWarp(kernel, sm, warp int) WarpProgram {
	const smCount, warpCount = 4, 8 // matches smallConfig
	idx := uint64(sm*warpCount + warp)
	total := uint64(smCount * warpCount)
	return &fixedWarp{
		w:      w,
		cursor: memdef.Addr(idx * memdef.BlockSize),
		step:   memdef.Addr(total * memdef.BlockSize),
		limit:  memdef.Addr(w.bufBytes),
	}
}

func (p *fixedWarp) Next() (int, MemInst, bool) {
	if p.issued >= p.w.insts || p.cursor >= p.limit {
		return 0, MemInst{}, true
	}
	p.issued++
	base := p.cursor
	p.cursor += p.step
	for i := range p.sectors {
		p.sectors[i] = base + memdef.Addr(i*memdef.SectorSize)
	}
	return p.w.compute, MemInst{Sectors: p.sectors[:], Space: memdef.SpaceGlobal}, false
}

// steadyState builds a system mid-kernel: the kernel is launched and warmed
// long enough that every pool, ring buffer, and table has reached its
// steady-state capacity.
func steadyState(t *testing.T, opts secmem.Options) *System {
	t.Helper()
	cfg := smallConfig()
	wl := &fixedWorkload{bufBytes: 40 << 20, compute: 4, insts: 20_000}
	s := NewSystem(cfg, opts)
	s.applySetup(0, wl.Setup(0))
	for _, sm := range s.sms {
		sm.launch(0, wl)
	}
	for i := 0; i < 30_000; i++ {
		s.tickOnce(s.cycle)
		s.cycle++
	}
	if s.smsFinished() {
		t.Fatal("workload finished during warm-up; steady-state measurement is vacuous")
	}
	return s
}

// TestTickSteadyStateAllocFree pins the tentpole's allocation-free hot path:
// once warm, a cycle of the full system (SMs, crossbar, L2 banks, MEEs, DRAM
// channels) must perform zero heap allocations, for the insecure baseline and
// for every secure-memory mechanism combination. Regressions here are how
// per-cycle garbage (map churn, queue re-slicing, scratch slices) sneaks back
// into the simulator.
func TestTickSteadyStateAllocFree(t *testing.T) {
	cases := []struct {
		name string
		opts secmem.Options
	}{
		{"Baseline", secmem.Options{}},
		{"Naive", secmem.Options{Enabled: true}},
		{"PSSM", secmem.Options{Enabled: true, LocalMetadata: true, SectoredMetadata: true}},
		{"SHM", secmem.Options{
			Enabled: true, LocalMetadata: true, SectoredMetadata: true,
			ReadOnlyOpt: true, DualGranMAC: true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := steadyState(t, tc.opts)
			allocs := testing.AllocsPerRun(5000, func() {
				s.tickOnce(s.cycle)
				s.cycle++
			})
			if allocs != 0 {
				t.Errorf("steady-state tick allocates %.2f times per cycle, want 0", allocs)
			}
			if s.smsFinished() {
				t.Error("workload finished during measurement; steady-state measurement is vacuous")
			}
		})
	}
}
