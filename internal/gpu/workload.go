package gpu

import "shmgpu/internal/memdef"

// MemInst is one memory instruction after coalescing: the set of distinct
// 32 B sectors the warp's lanes touch.
type MemInst struct {
	// Sectors are physical, sector-aligned addresses.
	Sectors []memdef.Addr
	// Write marks a store.
	Write bool
	// Space is the GPU memory space accessed.
	Space memdef.Space
	// Stall marks a scheduling bubble instead of a real instruction: the
	// warp waits briefly and asks again. Workloads use it to model
	// in-order tile dispatch (a warp cannot run arbitrarily far ahead of
	// the grid's work frontier). Stalls are not counted as instructions.
	Stall bool
}

// WarpProgram generates one warp's instruction stream. Implementations are
// deterministic for a given (kernel, sm, warp) so runs are reproducible.
type WarpProgram interface {
	// Next returns the number of non-memory (compute) instructions to
	// issue before the next memory instruction, then that memory
	// instruction. done=true means the warp has finished; the other
	// return values are ignored.
	Next() (compute int, mem MemInst, done bool)
}

// AddrRange is a half-open physical address range [Lo, Hi).
type AddrRange struct {
	Lo, Hi memdef.Addr
}

// StreamTruth labels a physical range with its true access pattern for
// oracle-predictor preloading (SHM_upper_bound).
type StreamTruth struct {
	Range     AddrRange
	Streaming bool
}

// KernelSetup describes the host-side activity before one kernel launch.
type KernelSetup struct {
	// CopyRanges are host→device copies performed before this kernel.
	// Before the first kernel they mark regions read-only; before later
	// kernels they either clear read-only state (plain overwrite) or
	// restore it via the InputReadOnlyReset API, per UseResetAPI.
	CopyRanges []AddrRange
	// UseResetAPI selects InputReadOnlyReset for this kernel's copies.
	UseResetAPI bool
	// ReadOnlyTruth lists ranges that are truly read-only during this
	// kernel (oracle preload and accuracy ground truth).
	ReadOnlyTruth []AddrRange
	// StreamTruths lists true access patterns per range (oracle preload).
	StreamTruths []StreamTruth
}

// Workload is the interface benchmark models implement.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Kernels returns the number of kernel launches.
	Kernels() int
	// Setup describes host activity before kernel k.
	Setup(k int) KernelSetup
	// NewWarp builds the deterministic instruction stream of one warp.
	NewWarp(kernel, sm, warp int) WarpProgram
}
