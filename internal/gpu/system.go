package gpu

import (
	"fmt"

	"shmgpu/internal/dram"
	"shmgpu/internal/invariant"
	"shmgpu/internal/memdef"
	"shmgpu/internal/obs"
	"shmgpu/internal/ringbuf"
	"shmgpu/internal/secmem"
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
)

// Result summarizes one simulation run.
type Result struct {
	// Workload and Scheme identify the run.
	Workload, Scheme string
	// Cycles is the total simulated cycles across kernels.
	Cycles uint64
	// Instructions is the total warp instructions issued.
	Instructions uint64
	// Traffic aggregates DRAM bytes moved by class across partitions.
	Traffic stats.Traffic
	// L1, L2 aggregate cache stats across instances.
	L1, L2 stats.CacheStats
	// Ctr, MAC, BMT aggregate the metadata caches across partitions.
	Ctr, MAC, BMT stats.CacheStats
	// ROAccuracy, StreamAccuracy are the Fig. 10/11 breakdowns (only
	// populated when the design tracks accuracy).
	ROAccuracy, StreamAccuracy stats.PredictorStats
	// BusUtilization is the mean DRAM data-bus utilization.
	BusUtilization float64
	// VictimHits and VictimPushes total the L2 victim-cache activity.
	VictimHits, VictimPushes uint64
	// Reg merges every MEE's event registry.
	Reg stats.Registry
	// Completed reports whether all warps finished before MaxCycles.
	Completed bool
	// Cancelled reports whether the run was abandoned via a cooperative
	// obs.Cancel flag (e.g. the stall watchdog) before finishing.
	Cancelled bool
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// BandwidthOverhead returns metadata bytes / data bytes (paper Fig. 14).
func (r Result) BandwidthOverhead() float64 { return r.Traffic.OverheadRatio() }

type xbarEntry struct {
	r  memdef.Request
	at uint64
}

type respEntry struct {
	phys memdef.Addr
	sm   int
	at   uint64
}

// partitionVictim adapts a partition's L2 banks to the secmem.VictimCache
// interface.
type partitionVictim struct {
	sys  *System
	part int
}

func (v partitionVictim) bank(addr memdef.Addr) *L2Bank {
	return v.sys.l2[v.part][v.sys.bankOf(addr)]
}

func (v partitionVictim) PushVictim(addr memdef.Addr)       { v.bank(addr).PushVictim(addr) }
func (v partitionVictim) ProbeVictim(addr memdef.Addr) bool { return v.bank(addr).ProbeVictim(addr) }
func (v partitionVictim) VictimActive() bool {
	for _, b := range v.sys.l2[v.part] {
		if b.victimActive() {
			return true
		}
	}
	return false
}

// System is the complete simulated GPU.
type System struct {
	cfg      Config
	opts     secmem.Options
	sms      []*SM           //shm:sharded one SM per element; owned by the SM shard covering its index
	l2       [][]*L2Bank     //shm:sharded outer index is the partition; owned by that partition's shard
	mees     []*secmem.MEE   //shm:sharded one MEE per partition
	channels []*dram.Channel //shm:sharded one DRAM channel per partition
	pmap     *memdef.PartitionMap

	// toPart and toSM are the crossbar request queues and the response
	// network. Both are rings ordered by maturity cycle: entries are pushed
	// with `at = now + XbarLatency` and now is monotonic, so the front is
	// always the earliest-maturing entry.
	toPart []ringbuf.Ring[xbarEntry] //shm:sharded per-partition request queues, drained by the owning shard
	toSM   ringbuf.Ring[respEntry]

	cycle uint64
	instr uint64

	// tickNow is the cycle currently being ticked; acceptFn reads it so the
	// crossbar-admission closure can be built once instead of per SM per
	// cycle (closure construction was a measurable hot-path allocation).
	tickNow  uint64
	acceptFn func(smRequest) bool
	// respondFn is the bound s.respond method value, materialized once.
	respondFn func(memdef.Request, uint64)
	// snapFn is the bound s.snapshot method value, materialized once so the
	// per-tick MaybeSample call does not rebind the receiver.
	snapFn func() telemetry.Snapshot

	// tele, when non-nil, collects probe events and timeline samples.
	tele *telemetry.Collector

	// obsProbe, when non-nil, receives live-observability events: a
	// progress heartbeat every obsInterval cycles and phase transitions at
	// kernel boundaries. Unlike the telemetry sampler it does NOT join the
	// event horizon — heartbeats may lag across fast-forward skips — so
	// attaching it cannot perturb the cycle-accurate results.
	obsProbe    obs.Probe
	obsInterval uint64
	obsNextAt   uint64
	// obsCancel, when non-nil, is polled once per tick; when set the run
	// abandons its cycle loop and the Result is marked Cancelled.
	obsCancel *obs.Cancel
	cancelled bool

	// Run-session state, serialized by SaveState so a restored run resumes
	// exactly where the parent paused. kernelIdx is the drive loop's
	// position; midKernel marks a paused kernel-interior cycle loop;
	// runDeadline is the absolute MaxCycles expiry for the current kernel.
	// The deadline is captured rather than recomputed on restore —
	// recomputing `cycle + MaxCycles` at the resume point would silently
	// extend the budget and diverge timeout-bound runs from scratch runs.
	kernelIdx   int
	midKernel   bool
	runDeadline uint64

	// syncer, when non-nil, is notified at the top of every tick so the
	// workload can freeze its cross-warp pacing state (see TickSynced).
	syncer TickSynced
	// par, when non-nil, is the sharded parallel tick engine (parallel.go);
	// tickOnce and nextEventCycle dispatch to it.
	par *parEngine
	// uvm, when non-nil, is the host-backed memory tier (Config.HostTier;
	// see uvm.go): crossbar admission faults on non-resident pages and the
	// tier's migrations tick in the sequential pre-phase of both engines.
	uvm *uvmState
}

// AttachTelemetry installs a collector on every component's probe point.
// Passing nil detaches all probes (the default, zero-overhead state). Attach
// before Run; the collector is not safe for concurrent simulations.
func (s *System) AttachTelemetry(c *telemetry.Collector) {
	s.tele = c
	// Hand components a typed-nil-free interface value: a nil *Collector
	// stored in a Probe interface would still make `probe != nil` true at
	// every emit site, so detach means storing a true nil.
	var p telemetry.Probe
	if c != nil {
		p = c
	}
	for _, sm := range s.sms {
		sm.probe = p
	}
	for part := range s.l2 {
		for _, b := range s.l2[part] {
			b.probe = p
		}
	}
	for part, ch := range s.channels {
		ch.SetProbe(p, part)
	}
	for _, mee := range s.mees {
		mee.SetProbe(p)
	}
}

// DefaultObsInterval is the progress-heartbeat period in cycles used when
// SetObserver is called with interval 0.
const DefaultObsInterval = 8192

// SetObserver installs a live-observability probe emitting EvProgress
// heartbeats every interval cycles (0 = DefaultObsInterval) plus phase
// begin/end events at kernel boundaries. Pass a true nil Probe to detach
// (never a nil concrete pointer in an interface — the emit sites' nil
// checks would pass and call through it). The probe is passive: it joins
// neither the event horizon nor any scheduling decision, so results are
// byte-identical with it attached or not.
func (s *System) SetObserver(p obs.Probe, interval uint64) {
	if interval == 0 {
		interval = DefaultObsInterval
	}
	s.obsProbe = p
	s.obsInterval = interval
	s.obsNextAt = 0
}

// SetCancel installs a cooperative cancellation flag, polled once per
// tick. A cancelled run returns from Run with Result.Cancelled set (and
// Completed false); partial statistics up to the abandon point remain in
// the Result.
func (s *System) SetCancel(c *obs.Cancel) { s.obsCancel = c }

// observePhase emits one phase-transition event at the current cycle.
func (s *System) observePhase(kind obs.EventKind, ph obs.Phase, k int) {
	if s.obsProbe != nil {
		s.obsProbe.Observe(obs.Event{Kind: kind, Phase: ph, Index: k, Cycle: s.cycle})
	}
}

// snapshot captures the cumulative cross-component state for one timeline
// sample. Called by the collector at most once per sample interval.
func (s *System) snapshot() telemetry.Snapshot {
	var snap telemetry.Snapshot
	for _, sm := range s.sms {
		snap.Instructions += sm.Instructions
		snap.L1.Merge(&sm.l1.Stats)
	}
	for p := range s.l2 {
		for _, b := range s.l2[p] {
			st := b.Stats()
			snap.L2.Merge(&st)
		}
	}
	for _, ch := range s.channels {
		snap.Traffic.Merge(&ch.Traffic)
		snap.DRAMPending += ch.Pending()
	}
	for _, mee := range s.mees {
		ctr, mac, bmt := mee.CacheStats()
		snap.Ctr.Merge(&ctr)
		snap.MAC.Merge(&mac)
		snap.BMT.Merge(&bmt)
	}
	return snap
}

// NewSystem builds a GPU running the given secure-memory design.
func NewSystem(cfg Config, opts secmem.Options) *System {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &System{
		cfg:    cfg,
		opts:   opts,
		pmap:   memdef.NewPartitionMap(cfg.Partitions),
		toPart: make([]ringbuf.Ring[xbarEntry], cfg.Partitions),
	}
	s.acceptFn = s.acceptRequest
	s.respondFn = s.respond
	s.snapFn = s.snapshot
	for i := 0; i < cfg.SMs; i++ {
		s.sms = append(s.sms, newSM(i, &s.cfg))
	}
	s.l2 = make([][]*L2Bank, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		for b := 0; b < cfg.L2BanksPerPartition; b++ {
			s.l2[p] = append(s.l2[p], newL2Bank(p, b, &s.cfg))
		}
		s.channels = append(s.channels, dram.NewChannel(cfg.DRAM))
		mee := secmem.NewMEE(cfg.MEEOptionsToConfig(opts, p), s)
		if opts.VictimL2 {
			mee.SetVictimCache(partitionVictim{sys: s, part: p})
		}
		s.mees = append(s.mees, mee)
	}
	return s
}

// MEE exposes partition p's encryption engine (analysis and tests).
func (s *System) MEE(p int) *secmem.MEE { return s.mees[p] }

// Enqueue implements secmem.DRAMPort.
func (s *System) Enqueue(part int, r dram.Req, now uint64) bool {
	return s.channels[part].Enqueue(r, now)
}

func (s *System) bankOf(local memdef.Addr) int {
	return int(uint64(local)/memdef.BlockSize) % s.cfg.L2BanksPerPartition
}

// applySetup performs the host-side work before kernel k.
func (s *System) applySetup(k int, setup KernelSetup) {
	for _, cr := range setup.CopyRanges {
		lo, hi := s.pmap.LocalRange(cr.Lo, cr.Hi)
		for p, mee := range s.mees {
			_ = p
			if k == 0 {
				mee.MarkInputRange(lo, hi)
			} else if setup.UseResetAPI {
				mee.InputReadOnlyReset(lo, hi, s.cycle)
			} else {
				mee.HostOverwrite(lo, hi)
			}
		}
	}
	if s.opts.OracleDetectors {
		for _, rr := range setup.ReadOnlyTruth {
			lo, hi := s.pmap.LocalRange(rr.Lo, rr.Hi)
			for _, mee := range s.mees {
				mee.OraclePreloadReadOnly(lo, hi, true)
			}
		}
		for _, st := range setup.StreamTruths {
			lo, hi := s.pmap.LocalRange(st.Range.Lo, st.Range.Hi)
			for _, mee := range s.mees {
				mee.OraclePreloadStreaming(lo, hi, st.Streaming)
			}
		}
	}
}

// GridAware is an optional Workload extension: workloads that shard work
// across warps receive the simulated grid dimensions before the run.
type GridAware interface {
	SetGrid(sms, warpsPerSM int)
}

// TickSynced is an optional Workload extension: the system calls SyncTick
// once at the top of every tick (in both the sequential and the sharded
// loop), letting the workload freeze cross-warp state — e.g. the pacing
// frontier — so that warp programs observe a per-tick snapshot instead of
// other warps' same-tick progress. Required for workloads whose programs
// share state, since the parallel engine ticks SMs concurrently.
type TickSynced interface {
	SyncTick()
}

// Run simulates the whole workload and returns the results.
func (s *System) Run(wl Workload) Result {
	s.beginRun(wl)
	res, _ := s.drive(wl, 0)
	return res
}

// RunUntil simulates until the workload completes or the cycle counter
// reaches stopCycle inside a kernel. It returns done=false when the run
// paused at the boundary — the System is then exactly at a tick boundary
// and can be captured with SaveState — or done=true with the final Result
// when every kernel finished first (nothing was captured; callers fall
// back to from-scratch runs). stopCycle of 0 never pauses.
func (s *System) RunUntil(wl Workload, stopCycle uint64) (Result, bool) {
	s.beginRun(wl)
	return s.drive(wl, stopCycle)
}

// Resume continues a run restored by LoadState through to completion. The
// workload must be the one passed to LoadState. Unlike Run it performs no
// grid setup — LoadState already rebuilt the warp programs.
func (s *System) Resume(wl Workload) Result {
	if ts, ok := wl.(TickSynced); ok {
		s.syncer = ts
	}
	s.startParallel()
	res, _ := s.drive(wl, 0)
	return res
}

// Shutdown releases the parallel engine's workers after a paused run
// (RunUntil returning done=false) when the System will not be resumed.
// Completed runs release them on their own.
func (s *System) Shutdown() {
	s.stopParallel()
	s.syncer = nil
}

// beginRun performs the one-time setup shared by Run and RunUntil.
func (s *System) beginRun(wl Workload) {
	if ga, ok := wl.(GridAware); ok {
		ga.SetGrid(s.cfg.SMs, s.cfg.WarpsPerSM)
	}
	if ts, ok := wl.(TickSynced); ok {
		s.syncer = ts
	}
	s.startUVM(wl)
	s.startParallel()
}

// drive is the kernel loop behind Run, RunUntil, and Resume. It starts (or
// re-enters, after a restore) kernel s.kernelIdx and runs to completion,
// unless stopCycle is nonzero and a kernel-interior tick boundary at or
// past it is reached first — then it returns done=false with the System
// paused in a SaveState-able position.
func (s *System) drive(wl Workload, stopCycle uint64) (Result, bool) {
	completed := true
	for ; s.kernelIdx < wl.Kernels(); s.kernelIdx++ {
		k := s.kernelIdx
		if !s.midKernel {
			s.observePhase(obs.EvPhaseBegin, obs.PhaseSetup, k)
			s.applySetup(k, wl.Setup(k))
			for _, sm := range s.sms {
				sm.launch(k, wl)
			}
			s.observePhase(obs.EvPhaseEnd, obs.PhaseSetup, k)
			s.observePhase(obs.EvPhaseBegin, obs.PhaseKernel, k)
			s.runDeadline = 0
			if s.cfg.MaxCycles > 0 {
				s.runDeadline = s.cycle + s.cfg.MaxCycles
			}
			s.midKernel = true
		}
		ok, paused := s.runKernel(stopCycle)
		if paused {
			return Result{}, false
		}
		s.midKernel = false
		s.observePhase(obs.EvPhaseEnd, obs.PhaseKernel, k)
		if !ok {
			completed = false
			break
		}
		// Kernel boundary: dirty L2 data drains through the MEE (this is
		// how buffered stores reach DRAM and trigger RO transitions and
		// MAC/counter updates), then dirty metadata follows.
		s.observePhase(obs.EvPhaseBegin, obs.PhaseDrain, k)
		for _, banks := range s.l2 {
			for _, b := range banks {
				b.flushAll()
			}
		}
		s.drainLoop()
		for _, mee := range s.mees {
			mee.FlushKernel(s.cycle)
			mee.FlushMetadata()
		}
		s.drainLoop()
		s.observePhase(obs.EvPhaseEnd, obs.PhaseDrain, k)
		for _, banks := range s.l2 {
			for _, b := range banks {
				b.resetSampling()
			}
		}
	}
	if s.cancelled {
		completed = false
	}
	res := s.collect(wl.Name(), completed)
	res.Cancelled = s.cancelled
	s.stopParallel()
	s.syncer = nil
	return res, true
}

// runKernel drives the cycle loop until all warps finish and the memory
// system drains, or the per-kernel cycle budget runs out. It reports
// whether the kernel completed, and — when stopCycle is nonzero — whether
// it paused at a tick boundary at or past stopCycle instead.
//
// After each tick the loop advances by the event horizon (see advanceCycle)
// rather than always by one cycle; ticks at the skipped cycles are provably
// no-ops, so the jump is invisible in results, telemetry, and cycle counts.
func (s *System) runKernel(stopCycle uint64) (ok, paused bool) {
	deadline := s.runDeadline
	idleStreak := 0
	for {
		// The pause gate only fires while warps are still running: once
		// they all finish, the loop is in its exit window (idleStreak
		// counting, one-cycle stepping) whose local state a restored run
		// could not reconstruct. Warps never un-finish within a kernel, so
		// !smsFinished guarantees idleStreak is 0 here.
		if stopCycle != 0 && s.cycle >= stopCycle && !s.smsFinished() {
			return false, true
		}
		if s.obsCancel != nil && s.obsCancel.Cancelled() {
			s.cancelled = true
			return false, false
		}
		now := s.cycle
		s.tickOnce(now)
		finished := s.smsFinished()
		idle := finished && s.drained()
		if idle {
			// Advance one cycle at a time through the exit window: the only
			// remaining future events are armed MAT-tracker expiries, which an
			// every-cycle run never reaches because the kernel exits after
			// five idle cycles (FlushKernel finalizes the trackers instead).
			// Jumping to those expiries would play out detector timeouts the
			// reference run cuts off, diverging cycle counts and traffic.
			s.cycle = now + 1
		} else {
			s.cycle = s.advanceCycle(now, deadline)
		}
		if deadline != 0 && s.cycle >= deadline {
			return false, false
		}
		if finished {
			if idle {
				idleStreak++
				if idleStreak > 4 {
					return true, false
				}
			} else {
				idleStreak = 0
			}
		}
	}
}

// drainLoop ticks until every queue and in-flight request empties (used at
// kernel boundaries after flushes). Bounded as a deadlock backstop: failing
// to converge means a request leaked somewhere in the memory system, which
// is reported as an invariant violation with the stuck occupancy, and the
// per-channel request-conservation invariant is checked on every successful
// drain.
func (s *System) drainLoop() {
	start := s.cycle
	for s.cycle-start < 2_000_000 {
		if s.obsCancel != nil && s.obsCancel.Cancelled() {
			// Abandon the drain; the caller's result is marked Cancelled, so
			// the undrained queues are never interpreted as a clean finish.
			s.cancelled = true
			return
		}
		if s.drained() {
			if invariant.Enabled() {
				for p, ch := range s.channels {
					ch.CheckConserved(fmt.Sprintf("dram[%d]", p), s.cycle)
				}
			}
			return
		}
		now := s.cycle
		s.tickOnce(now)
		if s.drained() {
			// The tick at now completed the drain: exit at now+1 exactly as
			// an every-cycle run would, instead of jumping to a far-future
			// sample or detector-expiry cycle that would inflate the exit
			// cycle (and everything downstream that reads s.cycle).
			s.cycle = now + 1
		} else {
			s.cycle = s.advanceCycle(now, 0)
		}
	}
	invariant.Failf("drain-convergence", "system", s.cycle,
		"memory system did not drain after 2M cycles: %s", s.pendingSummary())
}

// advanceCycle returns the next cycle to simulate after a tick at now. With
// fast-forward enabled it jumps to the system-wide event horizon — the
// earliest cycle at which any component can change state — and synthesizes
// the per-cycle telemetry the skipped ticks would have produced. deadline
// (when nonzero) caps the jump so MaxCycles expiry fires at the same cycle
// as under every-cycle ticking.
//
// The horizon contract each component implements (SM.nextEvent,
// L2Bank.nextEvent, MEE.NextEvent, Channel.NextEvent, and the queue fronts
// here): return the earliest cycle strictly after now at which ticking the
// component is not a no-op, or ^uint64(0) if only another component's
// progress can make it actable. Components that would merely retry
// back-pressured work report now+1; a tick at a cycle below every
// component's horizon would change no state and emit no event, which is
// what makes the skip transparent.
func (s *System) advanceCycle(now, deadline uint64) uint64 {
	next := now + 1
	if !s.cfg.DisableFastForward {
		if h := s.nextEventCycle(now); h != ^uint64(0) && h > next {
			next = h
		}
	}
	if deadline != 0 && next > deadline {
		next = deadline
	}
	if skipped := next - now - 1; skipped > 0 && s.tele != nil {
		// An every-cycle run emits one EvSMStall per unfinished SM per idle
		// cycle (sm.stallProbe). Stall events carry no histogram or capture
		// payload, so bulk-adding the count is exactly equivalent.
		for _, sm := range s.sms {
			if !sm.finished() {
				s.tele.AddEvents(telemetry.EvSMStall, skipped)
			}
		}
	}
	return next
}

// nextEventCycle computes the system-wide event horizon: the minimum of
// every component's next-event cycle and the telemetry sampler's next due
// cycle (samples must be taken at exactly the cycles an every-cycle run
// would take them). now+1 short-circuits — nothing can be earlier.
func (s *System) nextEventCycle(now uint64) uint64 {
	// The parallel engine reduces the shard-local horizons during the tick
	// itself; advanceCycle asks right afterwards, so the cache is hot.
	if s.par != nil && s.par.horizonOK && s.par.horizonFor == now {
		return s.par.horizonMin
	}
	next := ^uint64(0)
	for _, sm := range s.sms {
		if v := sm.nextEvent(now); v < next {
			next = v
			if next <= now+1 {
				return now + 1
			}
		}
	}
	for p := range s.toPart {
		if s.toPart[p].Len() > 0 {
			// The ring is maturity-ordered; a matured head retries delivery
			// every cycle (it may be waiting out bank back-pressure).
			v := s.toPart[p].Front().at
			if v <= now+1 {
				return now + 1
			}
			if v < next {
				next = v
			}
		}
	}
	if s.toSM.Len() > 0 {
		v := s.toSM.Front().at
		if v <= now+1 {
			return now + 1
		}
		if v < next {
			next = v
		}
	}
	for p := range s.l2 {
		for _, b := range s.l2[p] {
			if v := b.nextEvent(now); v < next {
				next = v
				if next <= now+1 {
					return now + 1
				}
			}
		}
	}
	for _, mee := range s.mees {
		if v := mee.NextEvent(now); v < next {
			next = v
			if next <= now+1 {
				return now + 1
			}
		}
	}
	for _, ch := range s.channels {
		if v := ch.NextEvent(now); v < next {
			next = v
			if next <= now+1 {
				return now + 1
			}
		}
	}
	if s.uvm != nil {
		if v := s.uvm.tier.NextEvent(now); v < next {
			next = v
			if next <= now+1 {
				return now + 1
			}
		}
	}
	if s.tele != nil {
		if at := s.tele.NextSampleAt(); at != ^uint64(0) {
			if at <= now+1 {
				return now + 1
			}
			if at < next {
				next = at
			}
		}
	}
	return next
}

// pendingSummary renders the stuck occupancy for drain-convergence reports:
// which queues still hold work and where requests are in flight.
func (s *System) pendingSummary() string {
	var xbar, resp, l2, meeBusy, dramPend int
	for p := range s.toPart {
		xbar += s.toPart[p].Len()
	}
	resp = s.toSM.Len()
	for p := range s.l2 {
		for _, b := range s.l2[p] {
			if !b.drained() {
				l2++
			}
		}
	}
	for _, mee := range s.mees {
		if !mee.Idle() {
			meeBusy++
		}
	}
	for _, ch := range s.channels {
		dramPend += ch.Pending()
	}
	migrations := 0
	if s.uvm != nil {
		migrations = s.uvm.tier.InflightMigrations()
	}
	return fmt.Sprintf("%d xbar entries, %d responses, %d busy L2 banks, %d busy MEEs, %d pending DRAM requests, %d in-flight page migrations",
		xbar, resp, l2, meeBusy, dramPend, migrations)
}

// acceptRequest is the crossbar admission path SMs call while issuing; it
// reads the tick cycle from s.tickNow (set by tickOnce) so the same func
// value serves every SM every cycle.
func (s *System) acceptRequest(r smRequest) bool {
	part, local := s.pmap.ToLocal(r.addr)
	if s.toPart[part].Len() >= s.cfg.XbarQueueDepth {
		return false
	}
	// Page-residency gate: a non-resident page faults (or keeps
	// migrating) and the request replays from the miss-queue head next
	// cycle. Checked after the queue-depth gate so the tier only ever
	// sees admission attempts that would otherwise succeed.
	if s.uvm != nil && !s.uvm.admit(r.addr, r.write, s.tickNow) {
		return false
	}
	kind := memdef.Read
	if r.write {
		kind = memdef.Write
	}
	s.toPart[part].Push(xbarEntry{
		r: memdef.Request{
			Phys: r.addr, Local: local, Partition: part,
			Kind: kind, Space: r.space, SM: r.sm, Warp: r.warp,
		},
		at: s.tickNow + s.cfg.XbarLatency,
	})
	return true
}

// tickOnce is the per-cycle entry point: everything it reaches is the
// steady-state hot path the hotalloc/syncfree analyzers police.
//
//shm:tick-root
func (s *System) tickOnce(now uint64) {
	// Progress heartbeat: one comparison per tick, one atomic store per
	// interval, no allocations. Deliberately outside the event horizon —
	// a lagging heartbeat is fine, a horizon entry would change skip
	// cycles and break byte-identity with unobserved runs.
	if s.obsProbe != nil && now >= s.obsNextAt {
		s.obsProbe.Observe(obs.Event{Kind: obs.EvProgress, Cycle: now}) //shm:cold interval-throttled heartbeat: fires once per obsInterval (8192 cycles), not per tick

		s.obsNextAt = now + s.obsInterval
	}
	if s.syncer != nil {
		s.syncer.SyncTick()
	}
	if s.par != nil {
		s.par.tick(now)
		return
	}
	if s.tele != nil {
		s.tele.MaybeSample(now, s.snapFn)
	}
	s.tickNow = now

	// 0. The host tier completes due page migrations, so a page ready at
	// cycle N admits this tick's retries (same position in both engines).
	if s.uvm != nil {
		s.uvm.tick(now)
	}

	// 1. SMs issue instructions; misses enter the crossbar.
	for _, sm := range s.sms {
		sm.tick(now, s.acceptFn)
	}

	// 2. Crossbar delivers matured requests to L2 banks. Delivery stops at
	// the first entry whose target bank is full: this is intentional
	// head-of-line blocking (the per-partition crossbar port is a FIFO
	// link, not a router), so a younger request to an uncontended bank must
	// wait behind the blocked head. The queue is maturity-ordered, so the
	// loop also stops at the first entry still in flight.
	for p := range s.toPart {
		q := &s.toPart[p]
		for q.Len() > 0 && q.Front().at <= now {
			front := q.Front()
			bank := s.l2[p][s.bankOf(front.r.Local)]
			if !bank.enqueue(front.r, now) {
				break
			}
			q.PopFront()
		}
	}

	// 3. L2 banks process requests, forwarding misses to their MEE.
	for p := range s.l2 {
		mee := s.mees[p]
		for _, bank := range s.l2[p] {
			bank.tick(now, mee, s.respondFn)
		}
	}

	// 4. MEEs advance; completed reads fill the L2 banks.
	for p, mee := range s.mees {
		for _, r := range mee.Tick(now) {
			bank := s.l2[p][s.bankOf(r.Local)]
			bank.onFill(r.Local, now, mee, s.respondFn)
		}
	}

	// 5. DRAM channels advance; completions return to their owning MEE.
	for p, ch := range s.channels {
		_ = p
		for _, done := range ch.Tick(now) {
			owner := secmem.TokenOwner(done.Token)
			if owner >= 0 && owner < len(s.mees) {
				s.mees[owner].OnDRAMComplete(done.Token, now)
			}
		}
	}

	// 6. Response network delivers matured fills to SMs. The ring is
	// maturity-ordered (respond pushes with a fixed latency off a monotonic
	// now), so the matured entries are exactly a front prefix and delivery
	// order matches the old full-scan-in-push-order exactly — that order is
	// load-bearing, since each fill touches L1 LRU state.
	for s.toSM.Len() > 0 && s.toSM.Front().at <= now {
		e := s.toSM.PopFront()
		s.sms[e.sm].onFill(e.phys, now)
	}
}

// respond routes an L2 read response back toward its SM.
func (s *System) respond(r memdef.Request, now uint64) {
	if r.SM < 0 {
		return
	}
	s.toSM.Push(respEntry{phys: memdef.SectorAddr(r.Phys), sm: r.SM, at: now + s.cfg.XbarLatency})
}

func (s *System) smsFinished() bool {
	for _, sm := range s.sms {
		if !sm.finished() {
			return false
		}
	}
	return true
}

func (s *System) drained() bool {
	for p := range s.toPart {
		if s.toPart[p].Len() > 0 {
			return false
		}
	}
	if s.toSM.Len() > 0 {
		return false
	}
	for p := range s.l2 {
		for _, b := range s.l2[p] {
			if !b.drained() {
				return false
			}
		}
	}
	for _, mee := range s.mees {
		if !mee.Idle() {
			return false
		}
	}
	for _, ch := range s.channels {
		if !ch.Drained() {
			return false
		}
	}
	if s.uvm != nil && s.uvm.tier.InflightMigrations() > 0 {
		return false
	}
	return true
}

func (s *System) collect(workload string, completed bool) Result {
	if s.tele != nil {
		if s.par != nil {
			// Shard counter buffers must fold into the collector before the
			// terminal sample stamps the counter array.
			s.par.flushCounters()
		}
		s.tele.FinishRun(s.cycle, s.snapshot)
	}
	res := Result{Workload: workload, Cycles: s.cycle, Completed: completed}
	for _, sm := range s.sms {
		res.Instructions += sm.Instructions
		res.L1.Merge(&sm.l1.Stats)
	}
	for p := range s.l2 {
		for _, b := range s.l2[p] {
			st := b.Stats()
			res.L2.Merge(&st)
			res.VictimHits += b.VictimHits
			res.VictimPushes += b.VictimPushes
		}
	}
	var busSum float64
	for _, ch := range s.channels {
		res.Traffic.Merge(&ch.Traffic)
		busSum += ch.BusUtilization(s.cycle)
	}
	res.BusUtilization = busSum / float64(len(s.channels))
	for _, mee := range s.mees {
		ctr, mac, bmtS := mee.CacheStats()
		res.Ctr.Merge(&ctr)
		res.MAC.Merge(&mac)
		res.BMT.Merge(&bmtS)
		res.Reg.Merge(&mee.Reg)
		mon, skip := mee.MATStats()
		res.Reg.Add("mat_monitored", mon)
		res.Reg.Add("mat_skipped", skip)
		ro, st := mee.AccuracyResults()
		res.ROAccuracy.Merge(&ro)
		res.StreamAccuracy.Merge(&st)
	}
	if s.uvm != nil {
		s.uvm.mergeInto(&res)
	}
	return res
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: IPC=%.3f cycles=%d instr=%d bwOvh=%.2f%% busUtil=%.1f%%",
		r.Workload, r.Scheme, r.IPC(), r.Cycles, r.Instructions,
		100*r.BandwidthOverhead(), 100*r.BusUtilization)
}
