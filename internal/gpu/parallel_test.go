package gpu

import (
	"fmt"
	"testing"

	"shmgpu/internal/invariant"
	"shmgpu/internal/secmem"
)

func TestShardRanges(t *testing.T) {
	for _, tc := range []struct{ n, s int }{
		{4, 1}, {4, 2}, {4, 4}, {4, 8}, {12, 3}, {12, 5}, {30, 8}, {1, 4},
	} {
		lo, hi := shardRanges(tc.n, tc.s)
		if len(lo) != tc.s || len(hi) != tc.s {
			t.Fatalf("shardRanges(%d,%d): %d ranges", tc.n, tc.s, len(lo))
		}
		covered := 0
		for k := 0; k < tc.s; k++ {
			if lo[k] > hi[k] {
				t.Fatalf("shardRanges(%d,%d): shard %d inverted [%d,%d)", tc.n, tc.s, k, lo[k], hi[k])
			}
			if k > 0 && lo[k] != hi[k-1] {
				t.Fatalf("shardRanges(%d,%d): gap between shard %d and %d", tc.n, tc.s, k-1, k)
			}
			covered += hi[k] - lo[k]
		}
		if lo[0] != 0 || hi[tc.s-1] != tc.n || covered != tc.n {
			t.Fatalf("shardRanges(%d,%d): covers %d units, lo=%v hi=%v", tc.n, tc.s, covered, lo, hi)
		}
	}
}

// parHarness builds a mid-launch system driving the fixedWorkload, with the
// parallel engine started when shards > 0.
func parHarness(t *testing.T, opts secmem.Options, shards int) *System {
	t.Helper()
	cfg := smallConfig()
	cfg.ParallelShards = shards
	wl := &fixedWorkload{bufBytes: 40 << 20, compute: 4, insts: 2_000}
	s := NewSystem(cfg, opts)
	s.applySetup(0, wl.Setup(0))
	for _, sm := range s.sms {
		sm.launch(0, wl)
	}
	s.startParallel()
	t.Cleanup(s.stopParallel)
	return s
}

// TestParallelTickLockstep drives a sequential and a sharded system through
// the same cycles and compares the crossbar response ring after every tick:
// identical entries in identical order is exactly the deterministic-exchange
// guarantee (outboxes appended in the sequential loop's push order), and
// any divergence pinpoints the first cycle where the shard engine's
// interleaving differs from the reference.
func TestParallelTickLockstep(t *testing.T) {
	opts := map[string]secmem.Options{
		"Baseline": {},
		"PSSM":     {Enabled: true, LocalMetadata: true, SectoredMetadata: true},
		"SHM": {Enabled: true, LocalMetadata: true, SectoredMetadata: true,
			ReadOnlyOpt: true, DualGranMAC: true},
	}
	for name, o := range opts {
		// 3 shards over 4 SMs and 12 partitions exercises uneven ranges;
		// 8 shards over 4 SMs exercises empty SM shards.
		for _, shards := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				seq := parHarness(t, o, 0)
				par := parHarness(t, o, shards)
				if par.par == nil {
					t.Fatal("parallel engine did not start")
				}
				for now := uint64(0); now < 4000; now++ {
					seq.tickOnce(now)
					par.tickOnce(now)
					if seq.toSM.Len() != par.toSM.Len() {
						t.Fatalf("cycle %d: response ring length %d (seq) vs %d (par)",
							now, seq.toSM.Len(), par.toSM.Len())
					}
					for i := 0; i < seq.toSM.Len(); i++ {
						if *seq.toSM.At(i) != *par.toSM.At(i) {
							t.Fatalf("cycle %d: response ring entry %d diverges: %+v (seq) vs %+v (par)",
								now, i, *seq.toSM.At(i), *par.toSM.At(i))
						}
					}
				}
				if seq.smsFinished() != par.smsFinished() {
					t.Fatalf("completion state diverges: seq=%v par=%v", seq.smsFinished(), par.smsFinished())
				}
			})
		}
	}
}

// TestParallelGateFallsBackSequential pins the locality gate: configurations
// the engine cannot run deterministically (or safely) must silently use the
// sequential loop.
func TestParallelGateFallsBackSequential(t *testing.T) {
	t.Run("non-local metadata", func(t *testing.T) {
		s := parHarness(t, secmem.Options{Enabled: true}, 4) // Naive routes metadata across partitions
		if s.par != nil {
			t.Fatal("engine started despite cross-partition metadata routing")
		}
	})
	t.Run("sanitizer armed", func(t *testing.T) {
		invariant.SetEnabled(true)
		defer invariant.SetEnabled(false)
		s := parHarness(t, secmem.Options{}, 4)
		if s.par != nil {
			t.Fatal("engine started with the invariant sanitizer armed")
		}
	})
	t.Run("zero crossbar latency", func(t *testing.T) {
		cfg := smallConfig()
		cfg.XbarLatency = 0
		cfg.ParallelShards = 4
		s := NewSystem(cfg, secmem.Options{})
		s.startParallel()
		if s.par != nil {
			t.Fatal("engine started with XbarLatency 0")
		}
	})
	t.Run("sequential default", func(t *testing.T) {
		s := parHarness(t, secmem.Options{}, 0)
		if s.par != nil {
			t.Fatal("engine started with ParallelShards 0")
		}
	})
}
