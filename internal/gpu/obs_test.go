package gpu

import (
	"bytes"
	"encoding/json"
	"testing"

	"shmgpu/internal/obs"
)

// recordingProbe captures every observability event in issue order.
type recordingProbe struct {
	events []obs.Event
}

func (p *recordingProbe) Observe(e obs.Event) { p.events = append(p.events, e) }

// TestObserverDoesNotPerturbSimulation is the ops plane's core contract:
// attaching a live-observability probe must not change a single simulated
// number, down to the full event-counter registry.
func TestObserverDoesNotPerturbSimulation(t *testing.T) {
	plain := run(t, smallConfig(), shmOptions(), testStream(600))

	probe := &recordingProbe{}
	sys := NewSystem(smallConfig(), shmOptions())
	sys.SetObserver(probe, 0)
	observed := sys.Run(testStream(600))

	if plain.Cycles != observed.Cycles ||
		plain.Instructions != observed.Instructions ||
		plain.Traffic != observed.Traffic ||
		plain.L2 != observed.L2 ||
		plain.Ctr != observed.Ctr ||
		plain.MAC != observed.MAC ||
		plain.BMT != observed.BMT {
		t.Errorf("observed run diverged:\nplain:    %s\nobserved: %s",
			plain.String(), observed.String())
	}
	a, err := json.Marshal(plain.Reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(observed.Reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("counter registries diverged:\nplain:    %s\nobserved: %s", a, b)
	}
	if len(probe.events) == 0 {
		t.Fatal("probe observed nothing")
	}
}

// TestObserverPhaseEventsBalanced checks the phase stream's shape: one
// begin/end pair per (phase, kernel), ends not before begins, and progress
// heartbeats interleaved at nondecreasing cycles.
func TestObserverPhaseEventsBalanced(t *testing.T) {
	probe := &recordingProbe{}
	sys := NewSystem(smallConfig(), shmOptions())
	sys.SetObserver(probe, 0)
	wl := &streamWorkload{name: "two", bufBytes: 2 << 20, compute: 6, insts: 300, kernels: 2}
	res := sys.Run(wl)
	if !res.Completed {
		t.Fatalf("workload did not complete: %s", res.String())
	}

	type phaseKey struct {
		ph obs.Phase
		k  int
	}
	begins := map[phaseKey]uint64{}
	pairs := map[phaseKey]int{}
	progress := 0
	lastCycle := uint64(0)
	for _, e := range probe.events {
		if e.Cycle < lastCycle {
			t.Fatalf("event cycle went backwards: %d after %d", e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
		switch e.Kind {
		case obs.EvProgress:
			progress++
		case obs.EvPhaseBegin:
			begins[phaseKey{e.Phase, e.Index}] = e.Cycle
		case obs.EvPhaseEnd:
			key := phaseKey{e.Phase, e.Index}
			begin, ok := begins[key]
			if !ok {
				t.Fatalf("phase end without begin: %+v", e)
			}
			if e.Cycle < begin {
				t.Fatalf("phase %+v ended at %d before its begin %d", key, e.Cycle, begin)
			}
			pairs[key]++
		}
	}
	for k := 0; k < 2; k++ {
		for _, ph := range []obs.Phase{obs.PhaseSetup, obs.PhaseKernel, obs.PhaseDrain} {
			if pairs[phaseKey{ph, k}] != 1 {
				t.Errorf("phase (%v, kernel %d): %d begin/end pairs, want 1",
					ph, k, pairs[phaseKey{ph, k}])
			}
		}
	}
	if progress == 0 {
		t.Error("no progress heartbeats")
	}
}

// TestCancelFlagAbandonsRun checks the cooperative cancellation path the
// stall watchdog uses: a set flag makes Run return promptly with the result
// marked Cancelled, never Completed.
func TestCancelFlagAbandonsRun(t *testing.T) {
	sys := NewSystem(smallConfig(), shmOptions())
	var c obs.Cancel
	c.Cancel()
	sys.SetCancel(&c)
	res := sys.Run(testStream(600))
	if !res.Cancelled {
		t.Error("result not marked Cancelled")
	}
	if res.Completed {
		t.Error("cancelled run claims completion")
	}
}
