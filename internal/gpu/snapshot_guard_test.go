package gpu

import (
	"strings"
	"testing"

	"shmgpu/internal/snapshot"
)

// TestSaveStateGuards pins the refusal conditions on System.SaveState: a
// system that was never paused mid-kernel (fresh or run to completion) has
// no coherent mid-run state to capture, a cancelled run must never become
// a loadable snapshot (the watchdog kill path), and a workload that cannot
// checkpoint its warp programs is rejected instead of silently captured
// without them.
func TestSaveStateGuards(t *testing.T) {
	wl := &fixedWorkload{bufBytes: 2 << 20, compute: 2, insts: 2000}

	// Never run: nothing is mid-kernel.
	fresh := NewSystem(smallConfig(), baselineOpts())
	if err := fresh.SaveState(snapshot.NewEncoder(), wl); err == nil {
		t.Error("SaveState on a never-run system succeeded; want mid-kernel refusal")
	}

	// Run to completion: the pause window has closed again.
	done := NewSystem(smallConfig(), baselineOpts())
	done.Run(wl)
	if err := done.SaveState(snapshot.NewEncoder(), wl); err == nil {
		t.Error("SaveState on a completed run succeeded; want mid-kernel refusal")
	}

	// Genuinely paused: the non-stateful test workload is rejected by the
	// capture path itself, and a cancel flag raised while paused (the
	// watchdog race) blocks capture outright.
	paused := NewSystem(smallConfig(), baselineOpts())
	if _, finished := paused.RunUntil(wl, 50); finished {
		t.Fatal("workload finished before cycle 50; cannot exercise the paused guards")
	}
	defer paused.Shutdown()
	if err := paused.SaveState(snapshot.NewEncoder(), wl); err == nil {
		t.Error("SaveState with a non-stateful workload succeeded; want rejection")
	} else if !strings.Contains(err.Error(), "workload") {
		t.Errorf("non-stateful workload rejection = %v; want it to name the workload", err)
	}
	paused.cancelled = true
	if err := paused.SaveState(snapshot.NewEncoder(), wl); err == nil {
		t.Error("SaveState on a cancelled run succeeded; want refusal")
	} else if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("cancelled-run rejection = %v; want it to say cancelled", err)
	}
}
