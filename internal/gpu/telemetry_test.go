package gpu

import (
	"testing"

	"shmgpu/internal/telemetry"
)

// instrumentedRun executes wl with a collector attached.
func instrumentedRun(t *testing.T, cfg Config, wl Workload, tcfg telemetry.Config) (Result, *telemetry.Collector) {
	t.Helper()
	col := telemetry.New(tcfg)
	sys := NewSystem(cfg, shmOptions())
	sys.AttachTelemetry(col)
	res := sys.Run(wl)
	if res.Instructions == 0 {
		t.Fatalf("no instructions executed: %+v", res)
	}
	return res, col
}

// TestTelemetryDoesNotPerturbSimulation is the observability layer's core
// contract: attaching a collector must not change a single simulated number.
func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	wl := testStream(600)
	plain := run(t, smallConfig(), shmOptions(), wl)
	instr, _ := instrumentedRun(t, smallConfig(),
		testStream(600), telemetry.Config{SampleInterval: 1000, CaptureEvents: true})
	if plain.Cycles != instr.Cycles ||
		plain.Instructions != instr.Instructions ||
		plain.Traffic != instr.Traffic ||
		plain.L2 != instr.L2 ||
		plain.Ctr != instr.Ctr ||
		plain.MAC != instr.MAC ||
		plain.BMT != instr.BMT {
		t.Errorf("instrumented run diverged:\nplain: %s\ninstr: %s", plain.String(), instr.String())
	}
}

func TestProbeCountsMatchResultCounters(t *testing.T) {
	res, col := instrumentedRun(t, smallConfig(), testStream(600),
		telemetry.Config{SampleInterval: 1000})
	if got := col.Count(telemetry.EvSMIssue); got != res.Instructions {
		t.Errorf("sm_issue events %d != instructions %d", got, res.Instructions)
	}
	// Every DRAM enqueue is eventually serviced (the run drains).
	if enq, srv := col.Count(telemetry.EvDRAMEnqueue), col.Count(telemetry.EvDRAMService); enq != srv {
		t.Errorf("dram enqueue %d != service %d", enq, srv)
	}
	if col.Count(telemetry.EvL2Hit)+col.Count(telemetry.EvL2Miss) == 0 {
		t.Error("no L2 probe events")
	}
	if col.Count(telemetry.EvMEEAccept) == 0 || col.Count(telemetry.EvMEEReadDone) == 0 {
		t.Error("no MEE lifecycle events")
	}
	if col.MEEReadLatency.Count() != col.Count(telemetry.EvMEEReadDone) {
		t.Error("MEE latency histogram count != read-done events")
	}
	if col.MEEReadLatency.P50() == 0 {
		t.Error("MEE read latency p50 is zero")
	}
}

func TestTimelineCoversRun(t *testing.T) {
	res, col := instrumentedRun(t, smallConfig(), testStream(600),
		telemetry.Config{SampleInterval: 5000})
	tl := col.Timeline()
	if len(tl.Samples) < 2 {
		t.Fatalf("timeline has %d samples", len(tl.Samples))
	}
	last := tl.Samples[len(tl.Samples)-1]
	if last.Cycle != res.Cycles {
		t.Errorf("terminal sample at %d, run ended at %d", last.Cycle, res.Cycles)
	}
	if last.Instructions != res.Instructions {
		t.Errorf("terminal sample instructions %d != result %d", last.Instructions, res.Instructions)
	}
	if last.Traffic != res.Traffic {
		t.Error("terminal sample traffic != result traffic")
	}
	// Cumulative samples must be monotonic in cycle and instructions.
	for i := 1; i < len(tl.Samples); i++ {
		if tl.Samples[i].Cycle <= tl.Samples[i-1].Cycle {
			t.Fatalf("samples not strictly increasing in cycle at %d", i)
		}
		if tl.Samples[i].Instructions < tl.Samples[i-1].Instructions {
			t.Fatalf("cumulative instructions decreased at %d", i)
		}
	}
}

func TestDetachTelemetry(t *testing.T) {
	sys := NewSystem(smallConfig(), shmOptions())
	sys.AttachTelemetry(telemetry.New(telemetry.Config{}))
	sys.AttachTelemetry(nil) // detach must restore the nil fast path
	res := sys.Run(testStream(50))
	if res.Instructions == 0 {
		t.Fatal("detached run executed nothing")
	}
	for _, sm := range sys.sms {
		if sm.probe != nil {
			t.Fatal("SM probe not detached")
		}
	}
	for _, ch := range sys.channels {
		_ = ch // channel probe is private to dram; detach is covered by the run not panicking
	}
}
