package gpu

import (
	"shmgpu/internal/cache"
	"shmgpu/internal/flatmap"
	"shmgpu/internal/memdef"
	"shmgpu/internal/ringbuf"
	"shmgpu/internal/telemetry"
)

// warpState tracks one resident warp.
type warpState struct {
	prog WarpProgram
	// computeLeft is the number of 1-cycle compute instructions still to
	// issue before the pending memory instruction.
	computeLeft int
	// pendingMem is the memory instruction to issue once computeLeft
	// drains; valid when haveMem.
	pendingMem MemInst
	haveMem    bool
	// outstanding counts sector responses the warp is waiting on.
	outstanding int
	// readyAt delays the warp after an L1 hit.
	readyAt uint64
	done    bool
}

// smRequest is a sector request traveling from an SM toward memory.
type smRequest struct {
	addr  memdef.Addr // physical sector address
	write bool
	space memdef.Space
	sm    int
	warp  int
}

// SM models one streaming multiprocessor: a set of warps scheduled
// greedy-then-oldest, a sectored L1 for loads (stores bypass the L1 and
// write through to L2, invalidating any local copy), and a bounded miss
// queue toward the crossbar.
type SM struct {
	id    int
	cfg   *Config
	warps []warpState
	l1    *cache.Cache
	// l1Waiters maps a sector being fetched to the warp indexes waiting on
	// it, in issue (FIFO) order.
	l1Waiters flatmap.MultiMap[int32]
	// missQueue holds sector requests awaiting crossbar acceptance.
	missQueue ringbuf.Ring[smRequest]
	// lastWarp implements greedy-then-oldest scheduling.
	lastWarp int

	// Instructions counts issued warp instructions (IPC numerator).
	Instructions uint64
	// Loads and Stores count memory instructions issued.
	Loads, Stores uint64

	// probe, when non-nil, observes instruction issue and stall cycles.
	probe telemetry.Probe
}

// issue classes for EvSMIssue events.
const (
	issueCompute = 0
	issueLoad    = 1
	issueStore   = 2
)

func (s *SM) issueProbe(now uint64, class uint8) {
	if s.probe != nil {
		s.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvSMIssue, Part: -1, Unit: int16(s.id), Class: class})
	}
}

// stallProbe records a cycle in which the SM had unfinished warps but
// issued nothing (memory stalls, scheduling bubbles, miss-queue throttle).
func (s *SM) stallProbe(now uint64) {
	if s.probe == nil || s.finished() {
		return
	}
	s.probe.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvSMStall, Part: -1, Unit: int16(s.id)})
}

func newSM(id int, cfg *Config) *SM {
	return &SM{
		id:  id,
		cfg: cfg,
		l1: cache.New(cache.Config{
			Name:             "l1",
			SizeBytes:        cfg.L1Bytes,
			Ways:             cfg.L1Ways,
			MSHRs:            cfg.L1MSHRs,
			MaxMergesPerMSHR: 16,
		}),
	}
}

// launch installs the kernel's warps, reusing the warm warp array and
// waiter table from the previous kernel (reallocating them per kernel threw
// away grown capacity; every slot is overwritten below, so no state leaks
// across the boundary — the double-run determinism test pins this).
func (s *SM) launch(kernel int, wl Workload) {
	if cap(s.warps) >= s.cfg.WarpsPerSM {
		s.warps = s.warps[:s.cfg.WarpsPerSM]
	} else {
		s.warps = make([]warpState, s.cfg.WarpsPerSM)
	}
	for w := range s.warps {
		s.warps[w] = warpState{prog: wl.NewWarp(kernel, s.id, w)}
		s.advance(&s.warps[w])
	}
	s.lastWarp = 0
	// The miss path is drained between kernels, so the waiter table is
	// already empty; Reset also covers defensive reuse after an aborted run.
	s.l1Waiters.Reset()
}

// advance pulls the next instruction bundle from the warp's program.
func (s *SM) advance(w *warpState) {
	if w.done {
		return
	}
	compute, mem, done := w.prog.Next()
	if done {
		w.done = true
		w.haveMem = false
		return
	}
	w.computeLeft = compute
	w.pendingMem = mem
	w.haveMem = true
}

// finished reports whether every warp has completed.
func (s *SM) finished() bool {
	for i := range s.warps {
		if !s.warps[i].done {
			return false
		}
	}
	return true
}

// tick issues at most one instruction and retries queued L1 misses.
// Sector requests that need the crossbar are appended to out (bounded by
// the caller's acceptance). The two halves are split so the parallel
// engine can run the crossbar drains sequentially (admission depends on
// other SMs' same-tick drains) and the issue stage per-shard (issue only
// touches SM-local state; it never calls accept).
func (s *SM) tick(now uint64, accept func(smRequest) bool) {
	s.drainMisses(accept)
	s.issueTick(now)
}

// drainMisses retries queued L1 misses against the crossbar: older
// requests have priority.
func (s *SM) drainMisses(accept func(smRequest) bool) {
	for s.missQueue.Len() > 0 {
		if !accept(*s.missQueue.Front()) {
			break
		}
		s.missQueue.PopFront()
	}
}

// issueTick issues at most one instruction from the SM's warps.
func (s *SM) issueTick(now uint64) {
	if s.missQueue.Len() > 32 {
		s.stallProbe(now)
		return // throttle issue until the queue drains
	}

	n := len(s.warps)
	for i := 0; i < n; i++ {
		wi := (s.lastWarp + i) % n
		w := &s.warps[wi]
		// Loads are non-blocking up to the in-flight cap (scoreboarded
		// issue): a warp only stalls when its outstanding sectors reach
		// the cap, modeling the memory-level parallelism of real warps.
		if w.done || w.outstanding >= s.cfg.MaxWarpInflightSectors || w.readyAt > now {
			continue
		}
		s.lastWarp = wi
		if w.computeLeft > 0 {
			w.computeLeft--
			s.Instructions++
			s.issueProbe(now, issueCompute)
			return
		}
		if !w.haveMem {
			s.advance(w)
			if w.done || w.computeLeft > 0 || !w.haveMem {
				return
			}
		}
		s.issueMem(w, wi, now)
		return
	}
	s.stallProbe(now)
}

func (s *SM) issueMem(w *warpState, warpIdx int, now uint64) {
	mem := w.pendingMem
	w.haveMem = false
	if mem.Stall {
		// Scheduling bubble: the warp backs off briefly and re-asks the
		// program; not counted as an instruction.
		w.readyAt = now + 16
		s.advance(w)
		s.stallProbe(now)
		return
	}
	s.Instructions++
	if mem.Write {
		s.issueProbe(now, issueStore)
		s.Stores++
		// Stores are posted: write through toward L2, no warp stall.
		for _, a := range mem.Sectors {
			s.l1.CleanInvalidate(a)
			s.missQueue.Push(smRequest{addr: a, write: true, space: mem.Space, sm: s.id, warp: -1})
		}
		s.advance(w)
		return
	}
	s.Loads++
	s.issueProbe(now, issueLoad)
	for _, a := range mem.Sectors {
		switch s.l1.Read(a) {
		case cache.Hit:
			// Satisfied locally; small latency charged below.
		case cache.MissNew:
			w.outstanding++
			s.l1Waiters.Add(uint64(a), int32(warpIdx))
			s.missQueue.Push(smRequest{addr: a, space: mem.Space, sm: s.id, warp: warpIdx})
		case cache.MissMerged:
			w.outstanding++
			s.l1Waiters.Add(uint64(a), int32(warpIdx))
		case cache.Blocked:
			// L1 MSHRs exhausted: bypass the L1's miss tracking and send
			// the request downstream anyway (the L2 merges duplicates);
			// the eventual fill still wakes this warp via l1Waiters.
			w.outstanding++
			s.l1Waiters.Add(uint64(a), int32(warpIdx))
			s.missQueue.Push(smRequest{addr: a, space: mem.Space, sm: s.id, warp: warpIdx})
		}
	}
	// Non-blocking issue: the program advances immediately; the warp only
	// stalls via the in-flight cap checked by the scheduler.
	if w.outstanding == 0 {
		w.readyAt = now + s.cfg.L1Latency
	}
	s.advance(w)
}

// onFill delivers a sector response from L2, waking waiting warps.
func (s *SM) onFill(addr memdef.Addr, now uint64) {
	s.l1.Fill(addr)
	s.l1Waiters.Drain(uint64(addr), func(wi int32) { //shm:alloc-ok drain callback capturing two words, built once per fill (not per waiter)
		w := &s.warps[wi]
		w.outstanding-- //shm:shard-ok warps belong to this SM, which is owned by one shard
		if w.outstanding == 0 {
			w.readyAt = now + 1 //shm:shard-ok warps belong to this SM, which is owned by one shard
		}
	})
}

// nextEvent returns the earliest cycle after now at which this SM can act
// on its own: queued crossbar retries and issuable warps mean the very next
// cycle; otherwise the earliest warp wake-up (post-hit latency or back-off)
// is the horizon. Warps capped on in-flight sectors wake via fills, which
// the response network's horizon accounts for.
func (s *SM) nextEvent(now uint64) uint64 {
	if s.missQueue.Len() > 0 {
		return now + 1
	}
	next := ^uint64(0)
	for i := range s.warps {
		w := &s.warps[i]
		if w.done || w.outstanding >= s.cfg.MaxWarpInflightSectors {
			continue
		}
		if w.readyAt > now {
			if w.readyAt < next {
				next = w.readyAt
			}
			continue
		}
		return now + 1
	}
	return next
}
