package fuzz

import (
	"math/rand"
)

// Generation strategy: every dimension stays inside a hand-validated
// enumeration (so generated cells are always runnable) while the
// enumerations themselves are chosen adversarially — sector-boundary
// buffer sizes, single-entry predictors and trackers, one-deep queues,
// monitoring windows at the 1/32/64 edges, write-saturated tiny buffers
// for counter pressure, and multi-kernel read-only rewrite cycles.

func pick(rng *rand.Rand, vals ...int) int { return vals[rng.Intn(len(vals))] }

func pickU64(rng *rand.Rand, vals ...uint64) uint64 { return vals[rng.Intn(len(vals))] }

func chance(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// Generate derives one random valid Case from rng. The same rng state
// always yields the same case; campaigns derive a fresh
// rand.New(rand.NewSource(seed+i)) per cell so any cell can be
// regenerated from (campaign seed, index) alone.
func Generate(rng *rand.Rand) Case {
	var c Case
	c.Seed = 1 + rng.Int63n(1<<30)

	// --- GPU shape ---
	s := &c.Config
	if chance(rng, 0.5) {
		s.SMs = pick(rng, 1, 2, 3, 4)
	}
	if chance(rng, 0.5) {
		s.WarpsPerSM = pick(rng, 1, 2, 4, 8)
	}
	partitions := basePartitions
	if chance(rng, 0.5) {
		partitions = pick(rng, 1, 2, 4)
		s.Partitions = partitions
	}
	if chance(rng, 0.3) {
		s.L2Banks = pick(rng, 1, 2)
	}
	if chance(rng, 0.3) {
		s.L2BankKB = pick(rng, 8, 16, 32)
	}
	if chance(rng, 0.3) {
		s.L1KB = pick(rng, 2, 4, 8)
	}
	// Tiny queue depths and MSHR files: back-pressure and head-of-line
	// blocking are where cycle-skipping bugs hide.
	if chance(rng, 0.4) {
		s.XbarQueueDepth = pick(rng, 1, 2, 4)
	}
	if chance(rng, 0.4) {
		s.DRAMQueueDepth = pick(rng, 1, 2, 4)
	}
	if chance(rng, 0.3) {
		s.L1MSHRs = pick(rng, 1, 2, 4)
	}
	if chance(rng, 0.3) {
		s.L2MSHRs = pick(rng, 1, 2, 4, 8)
	}
	if chance(rng, 0.3) {
		s.MaxInflight = pick(rng, 1, 2, 4, 16)
	}
	if chance(rng, 0.2) {
		s.DRAMBanks = pick(rng, 1, 2, 8)
	}
	if chance(rng, 0.2) {
		s.MEEInputQueue = pick(rng, 1, 2, 8)
	}
	if chance(rng, 0.2) {
		s.MEEIssue = 1
	}
	// Detector epoch edges: windows at the 1/31/33/64 boundaries, idle
	// timeouts from 1 cycle up, single-tracker files, and single-entry
	// predictors for maximum aliasing.
	if chance(rng, 0.35) {
		s.Trackers = pick(rng, 1, 2, 4)
	}
	if chance(rng, 0.35) {
		s.WindowAccesses = pick(rng, 1, 2, 31, 33, 64)
	}
	if chance(rng, 0.35) {
		s.TimeoutCycles = pickU64(rng, 1, 16, 100, 999)
	}
	if chance(rng, 0.2) {
		s.MonitorLead = pickU64(rng, 1, 2, 8)
	}
	if chance(rng, 0.25) {
		s.ROEntries = pick(rng, 1, 2, 8)
	}
	if chance(rng, 0.25) {
		s.StreamEntries = pick(rng, 1, 2, 8)
	}
	// Tiny metadata caches force eviction/writeback churn. Sizes must
	// keep 4-way power-of-two set counts: 512 B = 1 set, 1024 B = 2.
	if chance(rng, 0.3) {
		s.MDCacheBytes = pick(rng, 512, 1024)
	}
	perPartMB := pick(rng, 1, 2, 4)
	if perPartMB*partitions != baseDeviceMemMB {
		s.DeviceMemMB = perPartMB * partitions
	}
	if chance(rng, 0.3) {
		s.MaxKCycles = pick(rng, 20, 40, 80)
	}
	// UVM host tier: ratios straddling the fit boundary (100% exactly is
	// the migration-equivalence edge), small pages so tiny working sets
	// still span several, both eviction policies and integrity modes,
	// and the migration-ahead knobs (prefetch policy, batch cap, large
	// pages — which override the explicit page size; the two are
	// mutually exclusive in gpu.Config).
	if chance(rng, 0.35) {
		s.OversubPct = pick(rng, 25, 50, 75, 100, 150)
		if chance(rng, 0.15) {
			s.UVMLargePage = true
		} else if chance(rng, 0.5) {
			s.UVMPageKB = pick(rng, 4, 16, 64)
		}
		s.UVMFIFO = chance(rng, 0.3)
		s.UVMHostSide = chance(rng, 0.3)
		if chance(rng, 0.5) {
			s.UVMPrefetch = []string{"stride", "stream"}[rng.Intn(2)]
			if chance(rng, 0.4) {
				s.UVMBatchPages = pick(rng, 2, 4, 8)
			}
		}
	}

	// --- workload ---
	w := &c.Workload
	if chance(rng, 0.6) {
		w.MemInstsPerWarp = pick(rng, 4, 8, 32, 64)
	}
	if chance(rng, 0.5) {
		w.ComputePerMem = pick(rng, 1, 2, 4, 8)
	}
	if chance(rng, 0.3) {
		w.Kernels = pick(rng, 2, 3)
		w.RewriteInputs = chance(rng, 0.5)
		w.UseResetAPI = w.RewriteInputs && chance(rng, 0.5)
	}
	if chance(rng, 0.3) {
		w.FrontierWindow = pick(rng, 1, 2, 8)
	}

	budget := uint64(perPartMB*partitions) << 20
	nBuf := 1 + rng.Intn(4)
	var used uint64
	for i := 0; i < nBuf; i++ {
		b := genBuffer(rng)
		sz := uint64(b.KB) << 10
		rounded := (sz + 16383) &^ uint64(16383)
		if used+rounded > budget {
			break
		}
		used += rounded
		w.Buffers = append(w.Buffers, b)
	}
	if len(w.Buffers) == 0 {
		w.Buffers = []BufferSpec{{KB: 16}}
	}

	// --- schemes ---
	// Always keep the four-design core so every metamorphic oracle
	// applies; sometimes ride extra Table VIII designs along.
	if chance(rng, 0.3) {
		extras := []string{"Common_ctr", "PSSM_cctr", "SHM_readOnly", "SHM_cctr"}
		c.Schemes = append(append([]string(nil), DefaultSchemes...),
			extras[rng.Intn(len(extras))])
	}
	return c
}

func genBuffer(rng *rand.Rand) BufferSpec {
	var b BufferSpec
	// Sizes sit on and just off the 16 KB region / 4 KB chunk boundaries
	// (the declared size is region-rounded at placement; off-boundary
	// values exercise that rounding).
	b.KB = pick(rng, 4, 15, 16, 17, 32, 48, 63, 64, 128, 256)
	switch rng.Intn(10) {
	case 0, 1, 2, 3: // stream stays the most common, as on real GPUs
	case 4, 5, 6:
		b.Pattern = "random"
	case 7, 8:
		b.Pattern = "stencil"
	default:
		b.Pattern = "gather"
	}
	switch rng.Intn(10) {
	case 0:
		b.Space = "constant"
		b.ReadOnly = true
	case 1:
		b.Space = "texture"
	}
	if !b.ReadOnly && chance(rng, 0.4) {
		b.ReadOnly = true
	}
	if b.ReadOnly {
		b.HostCopied = chance(rng, 0.8)
	} else {
		// Write-saturated tiny buffers put the most pressure on minor
		// counters and RO-transition paths.
		fracs := []float64{0.05, 0.2, 0.5, 1.0}
		b.WriteFrac = fracs[rng.Intn(len(fracs))]
		b.HostCopied = chance(rng, 0.3)
	}
	if chance(rng, 0.3) {
		weights := []float64{0.5, 2, 4}
		b.Weight = weights[rng.Intn(len(weights))]
	}
	return b
}
