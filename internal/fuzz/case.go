// Package fuzz is the simulator's generative testing layer: a seeded
// random generator of valid GPU configurations and synthetic workloads, a
// differential-oracle runner that executes each generated cell under
// multiple cycle-skipping modes and secure-memory schemes and checks a
// battery of equivalence, metamorphic and conservation properties, and a
// deterministic shrinker that reduces failing cells to minimal replayable
// JSON repros.
//
// The package exists because the cycle core's correctness story rests on
// promises that hand-picked corpora cannot exhaust: event-horizon
// fast-forward must be byte-identical to every-cycle ticking, runs must be
// bit-reproducible under a seed, and the metadata-traffic accounting the
// paper's comparisons rest on must obey closed-form conservation laws for
// every configuration, not just the shipped benchmarks. cmd/shmfuzz drives
// timed campaigns over this package; the native go-fuzz targets in
// fuzz_test.go wrap the same oracles.
package fuzz

import (
	"encoding/json"
	"fmt"
	"os"

	"shmgpu/internal/dram"
	"shmgpu/internal/gpu"
	"shmgpu/internal/memdef"
	"shmgpu/internal/scheme"
	"shmgpu/internal/secmem"
	"shmgpu/internal/workload"
)

// Case is one replayable fuzz cell: a seed, a GPU configuration delta, a
// synthetic workload, and the scheme set to run it under. The zero value
// of every optional field means "use the tiny base default", so shrunk
// repros serialize to only the fields that matter.
type Case struct {
	// Name labels the cell in findings and logs.
	Name string `json:"name,omitempty"`
	// Seed is the workload seed (threaded into every warp program).
	Seed int64 `json:"seed"`
	// Config is the GPU configuration delta over the tiny base.
	Config ConfigSpec `json:"config"`
	// Workload is the synthetic kernel model.
	Workload WorkloadSpec `json:"workload"`
	// Schemes is the secure-memory designs to run (default: Baseline,
	// Naive, PSSM, SHM).
	Schemes []string `json:"schemes,omitempty"`
}

// ConfigSpec is the fuzzer-visible subset of gpu.Config. Zero fields take
// the tiny-base default (see BaseConfig), keeping repro JSON minimal.
type ConfigSpec struct {
	SMs            int `json:"sms,omitempty"`
	WarpsPerSM     int `json:"warps,omitempty"`
	Partitions     int `json:"partitions,omitempty"`
	L2Banks        int `json:"l2_banks,omitempty"`
	L2BankKB       int `json:"l2_bank_kb,omitempty"`
	L1KB           int `json:"l1_kb,omitempty"`
	L1MSHRs        int `json:"l1_mshrs,omitempty"`
	L2MSHRs        int `json:"l2_mshrs,omitempty"`
	XbarQueueDepth int `json:"xbar_queue,omitempty"`
	MaxInflight    int `json:"max_inflight,omitempty"`
	DeviceMemMB    int `json:"device_mem_mb,omitempty"`
	MaxKCycles     int `json:"max_kcycles,omitempty"`
	DRAMQueueDepth int `json:"dram_queue,omitempty"`
	DRAMBanks      int `json:"dram_banks,omitempty"`
	// ParallelShards runs the cell under the sharded parallel engine (0 =
	// sequential). The parallel-equivalence oracle forces its own shard
	// counts regardless; this field lets a repro pin the mode it failed in.
	ParallelShards int `json:"parallel_shards,omitempty"`

	// UVM host-tier knobs. OversubPct > 0 enables the host-backed tier
	// with a device frame budget covering OversubPct percent of the
	// working set (100 ⇒ everything fits, which the migration-equivalence
	// oracle pins byte-identical to the tier being off). UVMPageKB
	// overrides the migration page size (tiny-base default 16 KB, so even
	// one-buffer working sets span several pages); UVMFIFO switches the
	// eviction policy from LRU to FIFO; UVMHostSide selects the cheap
	// host-side integrity mode instead of the device-side rebuild.
	OversubPct  int  `json:"oversub_pct,omitempty"`
	UVMPageKB   int  `json:"uvm_page_kb,omitempty"`
	UVMFIFO     bool `json:"uvm_fifo,omitempty"`
	UVMHostSide bool `json:"uvm_hostside,omitempty"`
	// UVMPrefetch selects the migration-ahead policy ("" = demand-only;
	// "stride" or "stream"); UVMBatchPages caps coalesced migration batch
	// size; UVMLargePage switches to 2 MiB pages with sub-page dirty
	// tracking (it overrides UVMPageKB — the two are mutually exclusive
	// in gpu.Config).
	UVMPrefetch   string `json:"uvm_prefetch,omitempty"`
	UVMBatchPages int    `json:"uvm_batch,omitempty"`
	UVMLargePage  bool   `json:"uvm_large_page,omitempty"`

	// MEE / detector knobs, applied through Config.MEETune.
	MDCacheBytes   int    `json:"mdc_bytes,omitempty"`
	Trackers       int    `json:"trackers,omitempty"`
	WindowAccesses int    `json:"window_accesses,omitempty"`
	TimeoutCycles  uint64 `json:"timeout_cycles,omitempty"`
	MonitorLead    uint64 `json:"monitor_lead,omitempty"`
	ROEntries      int    `json:"ro_entries,omitempty"`
	StreamEntries  int    `json:"stream_entries,omitempty"`
	MEEInputQueue  int    `json:"mee_input_queue,omitempty"`
	MEEIssue       int    `json:"mee_issue,omitempty"`
}

// WorkloadSpec is the synthetic kernel model of a cell.
type WorkloadSpec struct {
	Buffers         []BufferSpec `json:"buffers"`
	ComputePerMem   int          `json:"compute_per_mem,omitempty"`
	Kernels         int          `json:"kernels,omitempty"`
	MemInstsPerWarp int          `json:"mem_insts,omitempty"`
	FrontierWindow  int          `json:"frontier_window,omitempty"`
	RewriteInputs   bool         `json:"rewrite_inputs,omitempty"`
	UseResetAPI     bool         `json:"use_reset_api,omitempty"`
}

// BufferSpec declares one device allocation of the synthetic kernel.
type BufferSpec struct {
	Name       string  `json:"name,omitempty"`
	KB         int     `json:"kb"`
	Pattern    string  `json:"pattern,omitempty"` // stream|random|stencil|gather
	Space      string  `json:"space,omitempty"`   // global|local|constant|texture
	ReadOnly   bool    `json:"read_only,omitempty"`
	WriteFrac  float64 `json:"write_frac,omitempty"`
	Weight     float64 `json:"weight,omitempty"` // default 1
	HostCopied bool    `json:"host_copied,omitempty"`
}

// Tiny-base defaults. The base is deliberately far smaller than
// QuickConfig: a fuzz campaign's value is cells per second, and every
// mechanism (sectoring, MSHRs, queue back-pressure, detector phases,
// metadata walks) is exercised at this scale too.
const (
	baseSMs          = 2
	baseWarps        = 4
	basePartitions   = 2
	baseL2Banks      = 1
	baseL2BankKB     = 16
	baseL1KB         = 4
	baseL1MSHRs      = 8
	baseL2MSHRs      = 16
	baseXbarQueue    = 8
	baseMaxInflight  = 8
	baseDeviceMemMB  = 4
	baseMaxKCycles   = 60
	baseDRAMQueue    = 8
	baseDRAMBanks    = 4
	baseMemInsts     = 16
	baseKernels      = 1
	baseBufferKB     = 16
	baseBufferWeight = 1.0
	baseUVMPageKB    = 16
)

// DefaultSchemes is the scheme set a Case with no explicit Schemes runs:
// the insecure baseline, the CPU-style naive design, PSSM, and full SHM —
// the minimum set over which all cross-scheme metamorphic oracles apply.
var DefaultSchemes = []string{"Baseline", "Naive", "PSSM", "SHM"}

func orInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func orU64(v, def uint64) uint64 {
	if v == 0 {
		return def
	}
	return v
}

// SchemeNames returns the cell's scheme list with the default applied.
func (c Case) SchemeNames() []string {
	if len(c.Schemes) == 0 {
		return append([]string(nil), DefaultSchemes...)
	}
	return c.Schemes
}

// GPUConfig materializes the cell's gpu.Config: the tiny base with the
// spec's non-zero fields applied, plus an MEETune hook carrying the
// detector and MEE-queue overrides.
func (c Case) GPUConfig() gpu.Config {
	s := c.Config
	cfg := gpu.Config{
		SMs:                     orInt(s.SMs, baseSMs),
		WarpsPerSM:              orInt(s.WarpsPerSM, baseWarps),
		Partitions:              orInt(s.Partitions, basePartitions),
		L2BanksPerPartition:     orInt(s.L2Banks, baseL2Banks),
		L2BankBytes:             orInt(s.L2BankKB, baseL2BankKB) << 10,
		L2Ways:                  4,
		L2MSHRs:                 orInt(s.L2MSHRs, baseL2MSHRs),
		L2Merges:                4,
		L1Bytes:                 orInt(s.L1KB, baseL1KB) << 10,
		L1Ways:                  2,
		L1MSHRs:                 orInt(s.L1MSHRs, baseL1MSHRs),
		L1Latency:               20,
		L2Latency:               30,
		XbarLatency:             20,
		XbarQueueDepth:          orInt(s.XbarQueueDepth, baseXbarQueue),
		MaxWarpInflightSectors:  orInt(s.MaxInflight, baseMaxInflight),
		DeviceMemoryBytes:       uint64(orInt(s.DeviceMemMB, baseDeviceMemMB)) << 20,
		MaxCycles:               uint64(orInt(s.MaxKCycles, baseMaxKCycles)) * 1000,
		ParallelShards:          s.ParallelShards,
		VictimMissRateThreshold: 0.90,
		VictimSampleWindow:      1024,
		DRAM: dram.Config{
			Banks:           orInt(s.DRAMBanks, baseDRAMBanks),
			RowBytes:        512,
			CASCycles:       40,
			RowCycles:       80,
			BytesPerCycleFP: 4759,
			QueueDepth:      orInt(s.DRAMQueueDepth, baseDRAMQueue),
		},
	}
	if s.OversubPct > 0 {
		cfg.HostTier = true
		cfg.OversubRatio = float64(s.OversubPct) / 100
		if s.UVMLargePage {
			cfg.UVMLargePages = true
		} else {
			cfg.UVMPageBytes = uint64(orInt(s.UVMPageKB, baseUVMPageKB)) << 10
		}
		if s.UVMFIFO {
			cfg.UVMMigrationPolicy = "fifo"
		}
		if s.UVMHostSide {
			cfg.UVMHostIntegrity = "hostside"
		}
		cfg.UVMPrefetch = s.UVMPrefetch
		cfg.UVMBatchPages = s.UVMBatchPages
	}
	if s.needsMEETune() {
		s := s // capture the spec, not the loop/receiver variable
		cfg.MEETune = func(mc *secmem.Config) {
			if s.MDCacheBytes != 0 {
				mc.CtrCache.SizeBytes = s.MDCacheBytes
				mc.MACCache.SizeBytes = s.MDCacheBytes
				mc.BMTCache.SizeBytes = s.MDCacheBytes
			}
			if s.Trackers != 0 {
				mc.Streaming.Trackers = s.Trackers
			}
			if s.WindowAccesses != 0 {
				mc.Streaming.WindowAccesses = s.WindowAccesses
			}
			if s.TimeoutCycles != 0 {
				mc.Streaming.TimeoutCycles = s.TimeoutCycles
			}
			if s.MonitorLead != 0 {
				mc.Streaming.MonitorLead = s.MonitorLead
			}
			if s.ROEntries != 0 {
				mc.ReadOnly.Entries = s.ROEntries
			}
			if s.StreamEntries != 0 {
				mc.Streaming.Entries = s.StreamEntries
			}
			if s.MEEInputQueue != 0 {
				mc.InputQueue = s.MEEInputQueue
			}
			if s.MEEIssue != 0 {
				mc.IssuePerCycle = s.MEEIssue
			}
		}
	}
	return cfg
}

func (s ConfigSpec) needsMEETune() bool {
	return s.MDCacheBytes != 0 || s.Trackers != 0 || s.WindowAccesses != 0 ||
		s.TimeoutCycles != 0 || s.MonitorLead != 0 || s.ROEntries != 0 ||
		s.StreamEntries != 0 || s.MEEInputQueue != 0 || s.MEEIssue != 0
}

func parseSpace(name string) (memdef.Space, error) {
	switch name {
	case "", "global":
		return memdef.SpaceGlobal, nil
	case "local":
		return memdef.SpaceLocal, nil
	case "constant":
		return memdef.SpaceConstant, nil
	case "texture":
		return memdef.SpaceTexture, nil
	}
	return memdef.SpaceGlobal, fmt.Errorf("fuzz: unknown memory space %q", name)
}

// WorkloadSpec materializes the cell's workload.Spec.
func (c Case) workloadSpec() (workload.Spec, error) {
	w := c.Workload
	spec := workload.Spec{
		BenchName:       "fuzzcell",
		ComputePerMem:   w.ComputePerMem,
		KernelCount:     orInt(w.Kernels, baseKernels),
		MemInstsPerWarp: orInt(w.MemInstsPerWarp, baseMemInsts),
		FrontierWindow:  w.FrontierWindow,
		RewriteInputs:   w.RewriteInputs,
		UseResetAPI:     w.UseResetAPI,
		Seed:            c.Seed,
	}
	if c.Name != "" {
		spec.BenchName = c.Name
	}
	for i, b := range w.Buffers {
		pat, err := workload.ParsePattern(b.Pattern)
		if err != nil {
			return workload.Spec{}, err
		}
		space, err := parseSpace(b.Space)
		if err != nil {
			return workload.Spec{}, err
		}
		name := b.Name
		if name == "" {
			name = fmt.Sprintf("buf%d", i)
		}
		weight := b.Weight
		if weight == 0 {
			weight = baseBufferWeight
		}
		spec.Buffers = append(spec.Buffers, workload.Buffer{
			Name:       name,
			Bytes:      uint64(orInt(b.KB, baseBufferKB)) << 10,
			Space:      space,
			Pattern:    pat,
			ReadOnly:   b.ReadOnly,
			WriteFrac:  b.WriteFrac,
			Weight:     weight,
			HostCopied: b.HostCopied,
		})
	}
	return spec, nil
}

// Bench builds a fresh runnable benchmark from the cell. Each simulation
// run needs its own Bench: the frontier-pacing state inside is per-run.
func (c Case) Bench() (*workload.Bench, error) {
	spec, err := c.workloadSpec()
	if err != nil {
		return nil, err
	}
	return workload.New(spec)
}

// Footprint returns the device-memory bytes the cell's buffers occupy
// after region rounding.
func (c Case) Footprint() uint64 {
	var total uint64
	for _, b := range c.Workload.Buffers {
		kb := uint64(orInt(b.KB, baseBufferKB)) << 10
		total += (kb + memdef.RegionSize - 1) &^ uint64(memdef.RegionSize-1)
	}
	return total
}

// Validate checks the cell is runnable: the GPU config passes its own
// validation, the metadata layout tiles the protected space, every scheme
// name resolves, the workload builds, and the buffers fit device memory.
func (c Case) Validate() error {
	cfg := c.GPUConfig()
	if err := cfg.Validate(); err != nil {
		return err
	}
	// Counter blocks must tile the protected space in both addressing
	// modes (metadata.NewLayout's 8 KB CounterCoverage rule).
	perPart := cfg.DeviceMemoryBytes / uint64(cfg.Partitions)
	if perPart == 0 || perPart%8192 != 0 {
		return fmt.Errorf("fuzz: per-partition memory %d not a multiple of 8 KB", perPart)
	}
	for _, name := range c.SchemeNames() {
		if _, err := scheme.ByName(name); err != nil {
			return err
		}
	}
	if len(c.Workload.Buffers) == 0 {
		return fmt.Errorf("fuzz: case has no buffers")
	}
	if _, err := c.Bench(); err != nil {
		return err
	}
	if fp := c.Footprint(); fp > cfg.DeviceMemoryBytes {
		return fmt.Errorf("fuzz: footprint %d exceeds device memory %d", fp, cfg.DeviceMemoryBytes)
	}
	return nil
}

// MarshalIndent renders the case as the canonical replayable JSON.
func (c Case) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}

// LoadCase reads a replayable case file written by a campaign or shrinker.
func LoadCase(path string) (Case, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Case{}, err
	}
	var c Case
	if err := json.Unmarshal(data, &c); err != nil {
		return Case{}, fmt.Errorf("fuzz: parsing %s: %w", path, err)
	}
	return c, nil
}
