package fuzz

import (
	"bytes"
	"encoding/json"
	"fmt"

	"shmgpu/internal/gpu"
	"shmgpu/internal/invariant"
	"shmgpu/internal/memdef"
	"shmgpu/internal/metadata"
	"shmgpu/internal/obs"
	"shmgpu/internal/scheme"
	"shmgpu/internal/secmem"
	"shmgpu/internal/snapshot"
	"shmgpu/internal/stats"
	"shmgpu/internal/telemetry"
)

// Violation is one oracle failure for a cell.
type Violation struct {
	// Oracle names the violated property ("ff-equivalence",
	// "parallel-equivalence", "fork-equivalence", "determinism",
	// "sanitizer-transparency", "detector-ablation",
	// "migration-equivalence", "prefetch-equivalence", "metamorphic-ipc",
	// "metamorphic-metadata", "conservation", "invariant").
	Oracle string `json:"oracle"`
	// Scheme is the design under which the violation surfaced.
	Scheme string `json:"scheme,omitempty"`
	// Detail is the human-readable diff or bound that failed.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	if v.Scheme == "" {
		return fmt.Sprintf("[%s] %s", v.Oracle, v.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", v.Oracle, v.Scheme, v.Detail)
}

// CheckOptions tunes the oracle battery.
type CheckOptions struct {
	// IPCTolerance is the fractional slack on the "security cannot make
	// the GPU faster" metamorphic check (Baseline IPC ≥ Naive IPC).
	// The MEE in the path shifts request arrival order at the DRAM
	// banks, which changes row-buffer hit patterns; under adversarial
	// 1-deep queues campaigns have measured genuine inversions up to
	// ~6% with identical instruction and data-byte counts (the shrunk
	// cells live in testdata/fuzz/repros). The oracle exists to catch
	// gross inversions — fast-forward miscounting cycles shows up as
	// tens of percent — so the slack sits above the scheduling jitter.
	IPCTolerance float64
	// MetaTolerance is the fractional slack on "SHM metadata traffic ≤
	// PSSM metadata traffic". Adversarial access patterns can make the
	// detectors mispredict persistently, paying recovery traffic; the
	// slack absorbs that while still catching double-charging bugs.
	MetaTolerance float64
	// Obs, when set, receives cycle heartbeats and phase spans from every
	// simulation the battery runs, so a live watchdog can tell a slow
	// cell from a wedged one. Observation is passive: artifacts are
	// byte-identical with or without it, which is itself pinned by the
	// determinism oracle whenever Obs is attached.
	Obs *obs.Run
}

// DefaultCheckOptions returns the campaign defaults.
func DefaultCheckOptions() CheckOptions {
	return CheckOptions{IPCTolerance: 0.10, MetaTolerance: 0.10}
}

// artifacts is everything observable about one run, in directly
// byte-comparable form.
type artifacts struct {
	res   gpu.Result
	line  string // rendered Result value fields
	snap  []byte // stats-registry snapshot JSON
	jsonl []byte // full telemetry JSONL export
}

// resultLine renders every Result value field (the Reg pointer is rendered
// via its snapshot instead).
func resultLine(res gpu.Result) string {
	return fmt.Sprintf(
		"cycles=%d insts=%d traffic=%+v l1=%+v l2=%+v ctr=%+v mac=%+v bmt=%+v ro=%+v stream=%+v bus=%.9f victim=%d/%d completed=%v",
		res.Cycles, res.Instructions, res.Traffic, res.L1, res.L2,
		res.Ctr, res.MAC, res.BMT, res.ROAccuracy, res.StreamAccuracy,
		res.BusUtilization, res.VictimHits, res.VictimPushes, res.Completed)
}

// runArtifacts executes the cell once under the given options.
// schemeLabel only names the run in exported artifacts (the ablation
// oracle runs SHM-derived options under PSSM's label so the byte
// comparison sees identical manifests). When sanitize is set the runtime
// invariant sanitizer is armed for the run and its violations returned.
// shards overrides the cell's ParallelShards for this run (0 =
// sequential); the parallel-equivalence oracle is the only caller that
// passes a non-zero value, so every other oracle compares runs of the
// reference sequential engine.
func (c Case) runArtifacts(orun *obs.Run, schemeLabel string, opts secmem.Options, disableFF, sanitize bool, shards int) (artifacts, []invariant.Violation, error) {
	bench, err := c.Bench()
	if err != nil {
		return artifacts{}, nil, err
	}
	cfg := c.GPUConfig()
	cfg.DisableFastForward = disableFF
	cfg.ParallelShards = shards

	var collected []invariant.Violation
	if sanitize {
		restore := invariant.CollectInto(&collected)
		defer restore()
	}

	col := telemetry.New(telemetry.Config{SampleInterval: 500, CaptureEvents: true})
	sys := gpu.NewSystem(cfg, opts)
	sys.AttachTelemetry(col)
	if orun != nil {
		// Heartbeats and phase spans only — never the cancel flag: a run
		// cancelled mid-battery would poison the byte comparisons, so the
		// fuzz watchdog is strictly dump-only.
		sys.SetObserver(orun, 0)
	}
	res := sys.Run(bench)
	res.Scheme = schemeLabel

	arts, err := c.renderArtifacts(res, col, cfg, schemeLabel)
	if err != nil {
		return artifacts{}, nil, err
	}
	return arts, collected, nil
}

// renderArtifacts renders one finished run into the byte-comparable form
// every equivalence oracle diffs.
func (c Case) renderArtifacts(res gpu.Result, col *telemetry.Collector, cfg gpu.Config, schemeLabel string) (artifacts, error) {
	snap, err := json.Marshal(res.Reg.Snapshot())
	if err != nil {
		return artifacts{}, err
	}
	m := telemetry.Manifest{
		Tool:          "shmfuzz",
		SchemaVersion: telemetry.SchemaVersion,
		Workload:      res.Workload,
		Scheme:        schemeLabel,
		SMs:           cfg.SMs,
		Partitions:    cfg.Partitions,
		Seed:          c.Seed,
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, col, summarize(res), m); err != nil {
		return artifacts{}, err
	}
	return artifacts{res: res, line: resultLine(res), snap: snap, jsonl: buf.Bytes()}, nil
}

// resumeArtifacts restores a snapshot blob into a fresh system under the
// child's execution strategy and runs it to completion. The fresh
// collector and bench mirror a from-scratch run exactly, so the rendered
// artifacts diff byte-for-byte against the scratch side. This is the fuzz
// battery's own inline fork path (the package deliberately does not
// import experiments; see summarize).
func (c Case) resumeArtifacts(schemeLabel string, opts secmem.Options, blob []byte, disableFF bool, shards int) (artifacts, error) {
	bench, err := c.Bench()
	if err != nil {
		return artifacts{}, err
	}
	cfg := c.GPUConfig()
	cfg.DisableFastForward = disableFF
	cfg.ParallelShards = shards

	col := telemetry.New(telemetry.Config{SampleInterval: 500, CaptureEvents: true})
	sys := gpu.NewSystem(cfg, opts)
	sys.AttachTelemetry(col)
	if err := sys.LoadState(snapshot.NewDecoder(blob), bench); err != nil {
		return artifacts{}, err
	}
	res := sys.Resume(bench)
	res.Scheme = schemeLabel
	return c.renderArtifacts(res, col, cfg, schemeLabel)
}

// forkEquivalence is the checkpoint/fork oracle: warm one run of the cell
// to the midpoint of its from-scratch cycle count, capture the complete
// simulator state once, and fork one child per execution variant — both
// fast-forward modes crossed with shard counts {1, 4}. Every child must
// be byte-indistinguishable (Result, stats snapshot, telemetry JSONL)
// from the matching from-scratch run. Any divergence is simulator state
// the snapshot captured wrongly, partially, or not at all.
func (c Case) forkEquivalence(schemeName string, opts secmem.Options, ff, ref artifacts) ([]Violation, error) {
	warmCycle := ff.res.Cycles / 2
	if warmCycle == 0 {
		return nil, nil
	}
	bench, err := c.Bench()
	if err != nil {
		return nil, err
	}
	cfg := c.GPUConfig()
	col := telemetry.New(telemetry.Config{SampleInterval: 500, CaptureEvents: true})
	sys := gpu.NewSystem(cfg, opts)
	sys.AttachTelemetry(col)
	if _, done := sys.RunUntil(bench, warmCycle); done {
		// The workload completed before the fork point: nothing to fork,
		// and nothing to check — a fallback scratch run is scratch.
		return nil, nil
	}
	enc := snapshot.NewEncoder()
	err = sys.SaveState(enc, bench)
	sys.Shutdown()
	if err != nil {
		return nil, err
	}
	blob := enc.Data()

	var vs []Violation
	for _, child := range []struct {
		disableFF bool
		shards    int
	}{
		{false, 1}, {false, 4}, {true, 1}, {true, 4},
	} {
		got, err := c.resumeArtifacts(schemeName, opts, blob, child.disableFF, child.shards)
		if err != nil {
			return nil, err
		}
		scratch, base := ff, "scratch(fast-forward)"
		if child.disableFF {
			scratch, base = ref, "scratch(every-cycle)"
		}
		name := fmt.Sprintf("forked(ff=%v,shards=%d)", !child.disableFF, child.shards)
		vs = append(vs, diffArtifacts("fork-equivalence", schemeName, name, base, got, scratch)...)
	}
	return vs, nil
}

// summarize mirrors experiments.TelemetrySummary without importing the
// experiments package (which would drag the full figure harness into
// every fuzz worker).
func summarize(res gpu.Result) telemetry.RunSummary {
	return telemetry.RunSummary{
		Workload:       res.Workload,
		Scheme:         res.Scheme,
		Cycles:         res.Cycles,
		Instructions:   res.Instructions,
		IPC:            res.IPC(),
		Completed:      res.Completed,
		BusUtilization: res.BusUtilization,
		Traffic:        res.Traffic,
		Caches: []telemetry.NamedCache{
			{Name: "l1", Stats: res.L1},
			{Name: "l2", Stats: res.L2},
			{Name: "ctr_mdc", Stats: res.Ctr},
			{Name: "mac_mdc", Stats: res.MAC},
			{Name: "bmt_mdc", Stats: res.BMT},
		},
		RO:       res.ROAccuracy,
		Stream:   res.StreamAccuracy,
		Counters: res.Reg.Snapshot(),
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// diffArtifacts byte-compares two runs that must be indistinguishable.
func diffArtifacts(oracle, schemeName, aName, bName string, a, b artifacts) []Violation {
	var vs []Violation
	if a.line != b.line {
		vs = append(vs, Violation{Oracle: oracle, Scheme: schemeName, Detail: fmt.Sprintf(
			"Result diverges:\n%s: %s\n%s: %s", aName, truncate(a.line, 400), bName, truncate(b.line, 400))})
	}
	if !bytes.Equal(a.snap, b.snap) {
		vs = append(vs, Violation{Oracle: oracle, Scheme: schemeName, Detail: fmt.Sprintf(
			"stats snapshots diverge:\n%s: %s\n%s: %s", aName, truncate(string(a.snap), 400), bName, truncate(string(b.snap), 400))})
	}
	if !bytes.Equal(a.jsonl, b.jsonl) {
		vs = append(vs, Violation{Oracle: oracle, Scheme: schemeName, Detail: fmt.Sprintf(
			"telemetry JSONL diverges (%d vs %d bytes)", len(a.jsonl), len(b.jsonl))})
	}
	return vs
}

// CheckCase runs the full oracle battery on one cell with default
// tolerances. It returns the violations found (nil when all oracles are
// green) or an error when the cell itself is invalid.
func CheckCase(c Case) ([]Violation, error) {
	return CheckCaseOpts(c, DefaultCheckOptions())
}

// CheckCaseOpts is CheckCase with explicit tolerances.
func CheckCaseOpts(c Case, opts CheckOptions) ([]Violation, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var vs []Violation
	arts := make(map[string]artifacts)
	refs := make(map[string]artifacts)
	names := c.SchemeNames()
	for _, name := range names {
		sch, err := scheme.ByName(name)
		if err != nil {
			return nil, err
		}
		ff, _, err := c.runArtifacts(opts.Obs, name, sch.Options, false, false, 0)
		if err != nil {
			return nil, err
		}
		ref, _, err := c.runArtifacts(opts.Obs, name, sch.Options, true, false, 0)
		if err != nil {
			return nil, err
		}
		vs = append(vs, diffArtifacts("ff-equivalence", name, "fast-forward", "every-cycle", ff, ref)...)
		// The sharded engine must be invisible: same Result, same stats,
		// same telemetry bytes. Schemes whose metadata mapping is not
		// partition-local fall back to the sequential engine under the
		// gate, so the comparison also pins the fallback path.
		par, _, err := c.runArtifacts(opts.Obs, name, sch.Options, false, false, 2)
		if err != nil {
			return nil, err
		}
		vs = append(vs, diffArtifacts("parallel-equivalence", name, "shards=2", "sequential", par, ff)...)
		vs = append(vs, conservation(c, sch.Options, name, ff.res)...)
		arts[name] = ff
		refs[name] = ref
	}

	// Double-run determinism plus the armed-sanitizer run on the scheme
	// with the most machinery in play.
	det := names[0]
	for _, name := range names {
		if name == "SHM" {
			det = name
		}
	}
	detSch, err := scheme.ByName(det)
	if err != nil {
		return nil, err
	}
	again, _, err := c.runArtifacts(opts.Obs, det, detSch.Options, false, false, 0)
	if err != nil {
		return nil, err
	}
	vs = append(vs, diffArtifacts("determinism", det, "first-run", "second-run", arts[det], again)...)

	san, ivs, err := c.runArtifacts(opts.Obs, det, detSch.Options, false, true, 0)
	if err != nil {
		return nil, err
	}
	for _, iv := range ivs {
		vs = append(vs, Violation{Oracle: "invariant", Scheme: det, Detail: iv.Error()})
	}
	vs = append(vs, diffArtifacts("sanitizer-transparency", det, "unchecked", "sanitized", arts[det], san)...)

	// Checkpoint/fork equivalence on the same scheme: forked children must
	// be byte-identical to from-scratch runs across both fast-forward
	// modes and shard counts {1, 4}.
	fvs, err := c.forkEquivalence(det, detSch.Options, arts[det], refs[det])
	if err != nil {
		return nil, err
	}
	vs = append(vs, fvs...)

	// Migration equivalence: a host tier whose frame budget covers the
	// whole working set (ratio ≥ 1.0) prepopulates everything, never
	// faults, and must be entirely invisible — byte-identical Result,
	// stats registry, and telemetry versus the tier disabled outright.
	// Checked on the detector-heavy scheme; each side reuses the
	// battery's existing artifacts when the cell already sits on that
	// side of the fit boundary, so the common case costs one extra run.
	{
		on, off := arts[det], arts[det]
		if c.Config.OversubPct < 100 {
			fit := c
			fit.Config.OversubPct = 100
			fitArts, _, err := fit.runArtifacts(opts.Obs, det, detSch.Options, false, false, 0)
			if err != nil {
				return nil, err
			}
			on = fitArts
		}
		if c.Config.OversubPct != 0 {
			bare := c
			bare.Config.OversubPct = 0
			bareArts, _, err := bare.runArtifacts(opts.Obs, det, detSch.Options, false, false, 0)
			if err != nil {
				return nil, err
			}
			off = bareArts
		}
		vs = append(vs, diffArtifacts("migration-equivalence", det, "host-tier(ratio>=1.0)", "host-tier-off", on, off)...)

		// Prefetch equivalence: at ratio ≥ 1.0 the tier never faults, no
		// fault streams form, and every migration-ahead policy must be
		// provably idle — byte-identical artifacts versus the tier being
		// off, for each policy in turn. This pins the idle-at-fit half of
		// the prefetcher contract for every generated cell, including the
		// batch-size and large-page variants the cell happens to carry.
		for _, pol := range []string{"stride", "stream"} {
			pf := c
			pf.Config.OversubPct = 100
			pf.Config.UVMPrefetch = pol
			pfArts, _, err := pf.runArtifacts(opts.Obs, det, detSch.Options, false, false, 0)
			if err != nil {
				return nil, err
			}
			vs = append(vs, diffArtifacts("prefetch-equivalence", det,
				"prefetch="+pol+"(ratio>=1.0)", "host-tier-off", pfArts, off)...)
		}
	}

	// Detector ablation: SHM options with both adaptive mechanisms
	// disabled must be indistinguishable from the PSSM preset — the two
	// flags are the designs' entire delta, so any residue here means
	// state is leaking between mechanisms (or across runs).
	if _, ok := arts["PSSM"]; ok && contains(names, "SHM") {
		shm, err := scheme.ByName("SHM")
		if err != nil {
			return nil, err
		}
		abl := shm.Options
		abl.ReadOnlyOpt = false
		abl.DualGranMAC = false
		ablArts, _, err := c.runArtifacts(opts.Obs, "PSSM", abl, false, false, 0)
		if err != nil {
			return nil, err
		}
		vs = append(vs, diffArtifacts("detector-ablation", "SHM", "SHM-detectors-off", "PSSM", ablArts, arts["PSSM"])...)
	}

	vs = append(vs, metamorphic(c, arts, opts)...)
	return vs, nil
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// metamorphic checks the cross-scheme orderings that hold by construction
// of the designs, independent of the workload.
func metamorphic(c Case, arts map[string]artifacts, opts CheckOptions) []Violation {
	var vs []Violation
	base, haveBase := arts["Baseline"]
	naive, haveNaive := arts["Naive"]
	if haveBase && haveNaive && base.res.Completed && naive.res.Completed {
		// Security support only adds latency and traffic: the insecure
		// baseline cannot be slower than the naive secure design.
		if bIPC, nIPC := base.res.IPC(), naive.res.IPC(); bIPC < nIPC*(1-opts.IPCTolerance) {
			vs = append(vs, Violation{Oracle: "metamorphic-ipc", Scheme: "Naive", Detail: fmt.Sprintf(
				"Baseline IPC %.6f < Naive IPC %.6f (tolerance %.2f%%): secure memory cannot speed the GPU up",
				bIPC, nIPC, opts.IPCTolerance*100)})
		}
	}
	pssm, havePSSM := arts["PSSM"]
	shm, haveSHM := arts["SHM"]
	// Like the IPC ordering, the metadata ordering only holds between
	// comparable executions: a run truncated by the cycle budget has
	// executed a different instruction prefix (campaign cell 20260805-4062
	// hit this — PSSM stalled at the kernel cap with 1/3 of the
	// instructions while SHM ran 3x further, so the byte totals compared
	// different programs).
	if havePSSM && haveSHM && pssm.res.Completed && shm.res.Completed {
		// SHM's whole point is less steady metadata traffic than PSSM:
		// the shared RO counter removes counter fetches and BMT walks,
		// dual-granularity MACs remove per-block MAC fetches. The
		// comparison deliberately excludes the mispredict-recovery
		// class — that is the design's explicitly-priced cost (paper
		// Tables III/IV), can dominate under adversarially detuned
		// detectors, and is bounded exactly by the conservation
		// oracle's recovery-event arithmetic instead.
		steady := func(t stats.Traffic) uint64 {
			return t.Bytes(stats.TrafficCounter) + t.Bytes(stats.TrafficMAC) + t.Bytes(stats.TrafficBMT)
		}
		pMeta, sMeta := steady(pssm.res.Traffic), steady(shm.res.Traffic)
		// InputReadOnlyReset's max-counter scan is charged to the counter
		// class but is an SHM-only cost PSSM never pays (PSSM re-copies
		// without the reset API); credit it here — the conservation
		// oracle bounds it exactly from the reset events.
		resetScan := shm.res.Reg.Get("input_readonly_reset") *
			(c.Footprint()/metadata.CounterCoverage + 2) * memdef.BlockSize
		if float64(sMeta) > float64(pMeta)*(1+opts.MetaTolerance)+float64(memdef.ChunkSize+resetScan) {
			vs = append(vs, Violation{Oracle: "metamorphic-metadata", Scheme: "SHM", Detail: fmt.Sprintf(
				"SHM steady metadata bytes %d exceed PSSM's %d beyond tolerance %.0f%%",
				sMeta, pMeta, opts.MetaTolerance*100)})
		}
	}
	return vs
}

// conservation checks the closed-form traffic model for one run: byte
// counts quantized to the DRAM sector size, the insecure baseline moving
// zero metadata, instruction totals matching the workload declaration,
// and every metadata class bounded by its cache activity plus layout
// arithmetic.
func conservation(c Case, opts secmem.Options, schemeName string, res gpu.Result) []Violation {
	var vs []Violation
	fail := func(format string, args ...any) {
		vs = append(vs, Violation{Oracle: "conservation", Scheme: schemeName, Detail: fmt.Sprintf(format, args...)})
	}

	// Every DRAM transfer is charged per 32 B sector.
	for cls := 0; cls < stats.NumTrafficClasses; cls++ {
		name := stats.TrafficClass(cls).String()
		if res.Traffic.ReadBytes[cls]%memdef.SectorSize != 0 {
			fail("%s read bytes %d not a multiple of the sector size", name, res.Traffic.ReadBytes[cls])
		}
		if res.Traffic.WriteBytes[cls]%memdef.SectorSize != 0 {
			fail("%s write bytes %d not a multiple of the sector size", name, res.Traffic.WriteBytes[cls])
		}
	}

	if !opts.Enabled {
		if md := res.Traffic.MetadataBytes(); md != 0 {
			fail("insecure baseline moved %d metadata bytes", md)
		}
		if res.Ctr.Accesses()+res.MAC.Accesses()+res.BMT.Accesses() != 0 {
			fail("insecure baseline touched metadata caches (ctr=%d mac=%d bmt=%d accesses)",
				res.Ctr.Accesses(), res.MAC.Accesses(), res.BMT.Accesses())
		}
		return vs
	}

	// Completed runs issue exactly the declared instruction stream:
	// kernels × SMs × warps × memory instructions, each preceded by
	// ComputePerMem compute instructions (±1 jitter when > 1).
	if res.Completed {
		cfg := c.GPUConfig()
		memTotal := uint64(orInt(c.Workload.Kernels, baseKernels)) *
			uint64(cfg.SMs) * uint64(cfg.WarpsPerSM) *
			uint64(orInt(c.Workload.MemInstsPerWarp, baseMemInsts))
		cpm := uint64(c.Workload.ComputePerMem)
		lo, hi := memTotal*(1+cpm), memTotal*(1+cpm)
		if cpm > 1 {
			lo, hi = memTotal*cpm, memTotal*(2+cpm)
		}
		if res.Instructions < lo || res.Instructions > hi {
			fail("completed run issued %d instructions, outside the declared window [%d, %d] (mem=%d compute/mem=%d)",
				res.Instructions, lo, hi, memTotal, cpm)
		}
	}

	// Metadata classes bounded by their cache activity plus the layout's
	// direct-scan arithmetic. Misses/fills/writebacks are each ≤ one
	// block of traffic; InputReadOnlyReset scans the counter sectors
	// covering the reset range directly (no cache), bounded by the
	// footprint's counter coverage per event.
	bound := func(name string, bytes, extra uint64, st stats.CacheStats) {
		limit := (st.Misses+st.SectorFills+st.Writebacks)*memdef.BlockSize + extra
		if bytes > limit {
			fail("%s traffic %d bytes exceeds cache-activity bound %d (misses=%d fills=%d writebacks=%d extra=%d)",
				name, bytes, limit, st.Misses, st.SectorFills, st.Writebacks, extra)
		}
	}
	resets := res.Reg.Get("input_readonly_reset")
	ctrScan := resets * (c.Footprint()/metadata.CounterCoverage + 2) * memdef.BlockSize
	bound("counter", res.Traffic.Bytes(stats.TrafficCounter), ctrScan, res.Ctr)
	bound("mac", res.Traffic.Bytes(stats.TrafficMAC), 0, res.MAC)
	bound("bmt", res.Traffic.Bytes(stats.TrafficBMT), 0, res.BMT)

	// Mispredict-recovery traffic is exactly enumerable from the
	// recovery events (Tables III/IV): a full-chunk data refetch, a
	// chunk's worth of block MACs, or one chunk-MAC sector.
	mpLimit := res.Reg.Get("mp_refetch_chunk_data")*memdef.ChunkSize +
		res.Reg.Get("mp_refetch_blk_macs")*(memdef.BlocksPerChunk*metadata.BlockMACBytes+2*memdef.SectorSize) +
		res.Reg.Get("mp_refetch_chunk_mac")*memdef.SectorSize
	if mp := res.Traffic.Bytes(stats.TrafficMispredict); mp > mpLimit {
		fail("mispredict traffic %d bytes exceeds event bound %d", mp, mpLimit)
	}
	if !opts.DualGranMAC {
		if mp := res.Traffic.Bytes(stats.TrafficMispredict); mp != 0 {
			fail("design without dual-granularity MACs moved %d mispredict bytes", mp)
		}
	}
	return vs
}
