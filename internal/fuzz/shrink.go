package fuzz

import (
	"encoding/json"
)

// FailurePredicate reports whether a candidate cell still exhibits the
// failure being minimized. Predicates must be pure functions of the cell
// (the simulator is deterministic, so re-running the oracle battery is).
type FailurePredicate func(Case) bool

// OracleFails builds the canonical predicate: the cell is still "failing"
// when the oracle battery reports at least one violation of one of the
// given oracle names (any violation when no names are given). Invalid
// candidate cells count as not failing, so the shrinker never escapes the
// valid-case space.
func OracleFails(oracles ...string) FailurePredicate {
	want := make(map[string]bool, len(oracles))
	for _, o := range oracles {
		want[o] = true
	}
	return func(c Case) bool {
		vs, err := CheckCase(c)
		if err != nil {
			return false
		}
		for _, v := range vs {
			if len(want) == 0 || want[v.Oracle] {
				return true
			}
		}
		return false
	}
}

// cost orders cells for shrinking: fewer simulation runs first, then
// shorter canonical JSON. The shrinker only accepts strictly
// cost-decreasing candidates, which guarantees termination.
func cost(c Case) (runs, jsonLen int) {
	runs = len(c.SchemeNames())
	data, err := json.Marshal(c)
	if err != nil {
		return runs, 1 << 30
	}
	return runs, len(data)
}

func costLess(a, b Case) bool {
	ar, aj := cost(a)
	br, bj := cost(b)
	if ar != br {
		return ar < br
	}
	return aj < bj
}

// candidates enumerates one pass of reduction attempts in a fixed order:
// structural deletions first (schemes, buffers), then field resets toward
// the tiny-base defaults, then numeric halvings. Order matters for
// determinism, not correctness — every accepted step strictly shrinks.
func candidates(c Case) []Case {
	var out []Case

	// Drop schemes: try each single scheme alone, then each removal.
	names := c.SchemeNames()
	if len(names) > 1 {
		for _, keep := range names {
			n := c
			n.Schemes = []string{keep}
			out = append(out, n)
		}
		for i := range names {
			n := c
			n.Schemes = append(append([]string(nil), names[:i]...), names[i+1:]...)
			out = append(out, n)
		}
	}

	// Drop buffers.
	if len(c.Workload.Buffers) > 1 {
		for i := range c.Workload.Buffers {
			n := c
			n.Workload.Buffers = append(append([]BufferSpec(nil), c.Workload.Buffers[:i]...), c.Workload.Buffers[i+1:]...)
			out = append(out, n)
		}
	}

	// Simplify buffers field by field.
	for i, b := range c.Workload.Buffers {
		try := func(mut func(*BufferSpec)) {
			n := c
			n.Workload.Buffers = append([]BufferSpec(nil), c.Workload.Buffers...)
			mut(&n.Workload.Buffers[i])
			out = append(out, n)
		}
		if b.KB != 0 {
			try(func(b *BufferSpec) { b.KB = 0 })
			if b.KB > 2*baseBufferKB {
				try(func(b *BufferSpec) { b.KB /= 2 })
			}
		}
		if b.Pattern != "" {
			try(func(b *BufferSpec) { b.Pattern = "" })
		}
		if b.Space != "" {
			try(func(b *BufferSpec) { b.Space = "" })
		}
		if b.ReadOnly {
			try(func(b *BufferSpec) { b.ReadOnly = false })
		}
		if b.WriteFrac != 0 {
			try(func(b *BufferSpec) { b.WriteFrac = 0 })
		}
		if b.Weight != 0 {
			try(func(b *BufferSpec) { b.Weight = 0 })
		}
		if b.HostCopied {
			try(func(b *BufferSpec) { b.HostCopied = false })
		}
		if b.Name != "" {
			try(func(b *BufferSpec) { b.Name = "" })
		}
	}

	// Workload scalars.
	w := c.Workload
	tryW := func(mut func(*WorkloadSpec)) {
		n := c
		mut(&n.Workload)
		out = append(out, n)
	}
	for _, f := range []struct {
		val int
		mut func(*WorkloadSpec, int)
	}{
		{w.Kernels, func(w *WorkloadSpec, v int) { w.Kernels = v }},
		{w.MemInstsPerWarp, func(w *WorkloadSpec, v int) { w.MemInstsPerWarp = v }},
		{w.ComputePerMem, func(w *WorkloadSpec, v int) { w.ComputePerMem = v }},
		{w.FrontierWindow, func(w *WorkloadSpec, v int) { w.FrontierWindow = v }},
	} {
		f := f
		if f.val != 0 {
			tryW(func(w *WorkloadSpec) { f.mut(w, 0) })
			if f.val > 2 {
				tryW(func(w *WorkloadSpec) { f.mut(w, f.val/2) })
			}
		}
	}
	if w.RewriteInputs {
		tryW(func(w *WorkloadSpec) { w.RewriteInputs = false; w.UseResetAPI = false })
	}
	if w.UseResetAPI {
		tryW(func(w *WorkloadSpec) { w.UseResetAPI = false })
	}

	// Config fields: reset each non-zero field to its default, then try
	// halving the larger numeric ones.
	s := c.Config
	tryC := func(mut func(*ConfigSpec)) {
		n := c
		mut(&n.Config)
		out = append(out, n)
	}
	for _, f := range []struct {
		val int
		mut func(*ConfigSpec, int)
	}{
		{s.SMs, func(s *ConfigSpec, v int) { s.SMs = v }},
		{s.WarpsPerSM, func(s *ConfigSpec, v int) { s.WarpsPerSM = v }},
		{s.Partitions, func(s *ConfigSpec, v int) { s.Partitions = v }},
		{s.L2Banks, func(s *ConfigSpec, v int) { s.L2Banks = v }},
		{s.L2BankKB, func(s *ConfigSpec, v int) { s.L2BankKB = v }},
		{s.L1KB, func(s *ConfigSpec, v int) { s.L1KB = v }},
		{s.L1MSHRs, func(s *ConfigSpec, v int) { s.L1MSHRs = v }},
		{s.L2MSHRs, func(s *ConfigSpec, v int) { s.L2MSHRs = v }},
		{s.XbarQueueDepth, func(s *ConfigSpec, v int) { s.XbarQueueDepth = v }},
		{s.MaxInflight, func(s *ConfigSpec, v int) { s.MaxInflight = v }},
		{s.DeviceMemMB, func(s *ConfigSpec, v int) { s.DeviceMemMB = v }},
		{s.MaxKCycles, func(s *ConfigSpec, v int) { s.MaxKCycles = v }},
		{s.DRAMQueueDepth, func(s *ConfigSpec, v int) { s.DRAMQueueDepth = v }},
		{s.DRAMBanks, func(s *ConfigSpec, v int) { s.DRAMBanks = v }},
		{s.MDCacheBytes, func(s *ConfigSpec, v int) { s.MDCacheBytes = v }},
		{s.Trackers, func(s *ConfigSpec, v int) { s.Trackers = v }},
		{s.WindowAccesses, func(s *ConfigSpec, v int) { s.WindowAccesses = v }},
		{s.ROEntries, func(s *ConfigSpec, v int) { s.ROEntries = v }},
		{s.StreamEntries, func(s *ConfigSpec, v int) { s.StreamEntries = v }},
		{s.MEEInputQueue, func(s *ConfigSpec, v int) { s.MEEInputQueue = v }},
		{s.MEEIssue, func(s *ConfigSpec, v int) { s.MEEIssue = v }},
		{s.OversubPct, func(s *ConfigSpec, v int) { s.OversubPct = v }},
		{s.UVMPageKB, func(s *ConfigSpec, v int) { s.UVMPageKB = v }},
		{s.UVMBatchPages, func(s *ConfigSpec, v int) { s.UVMBatchPages = v }},
	} {
		f := f
		if f.val != 0 {
			tryC(func(s *ConfigSpec) { f.mut(s, 0) })
		}
	}
	if s.TimeoutCycles != 0 {
		tryC(func(s *ConfigSpec) { s.TimeoutCycles = 0 })
	}
	if s.MonitorLead != 0 {
		tryC(func(s *ConfigSpec) { s.MonitorLead = 0 })
	}
	if s.UVMFIFO {
		tryC(func(s *ConfigSpec) { s.UVMFIFO = false })
	}
	if s.UVMHostSide {
		tryC(func(s *ConfigSpec) { s.UVMHostSide = false })
	}
	if s.UVMLargePage {
		tryC(func(s *ConfigSpec) { s.UVMLargePage = false })
	}
	if s.UVMPrefetch != "" {
		tryC(func(s *ConfigSpec) { s.UVMPrefetch = "" })
	}

	// Seed and name cosmetics last: a failure that survives a seed swap
	// is a much stronger repro, but behaviour is seed-dependent, so this
	// must not preempt structural reduction.
	if c.Seed > 3 {
		n := c
		n.Seed = 1 + c.Seed%3
		out = append(out, n)
	}
	if c.Name != "" {
		n := c
		n.Name = ""
		out = append(out, n)
	}
	return out
}

// Shrink greedily reduces a failing cell to a minimal one: in each pass
// it tries the reduction candidates in a fixed order and accepts the
// first strictly cost-smaller candidate that still fails, restarting
// until a full pass makes no progress or the attempt budget is spent.
// The procedure is deterministic: the same cell and predicate always
// produce the same minimal repro. attempts counts predicate evaluations
// (each one runs the full oracle battery); budget ≤ 0 means the default
// of 300.
func Shrink(c Case, pred FailurePredicate, budget int) (Case, int) {
	if budget <= 0 {
		budget = 300
	}
	attempts := 0
	for {
		progressed := false
		for _, cand := range candidates(c) {
			if attempts >= budget {
				return c, attempts
			}
			if !costLess(cand, c) {
				continue
			}
			attempts++
			if pred(cand) {
				c = cand
				progressed = true
				break
			}
		}
		if !progressed {
			return c, attempts
		}
	}
}
