package fuzz

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"shmgpu/internal/obs"
)

// CampaignOptions configures a timed fuzzing campaign.
type CampaignOptions struct {
	// Seed is the campaign master seed. Cell i is generated from
	// rand.NewSource(Seed + i), so any cell is regenerable from the
	// campaign seed and its index alone — a finding report needs no
	// other state to replay.
	Seed int64
	// Duration bounds the campaign wall-clock time; no new cell starts
	// after the deadline. Zero means no time bound (MaxCells must be set).
	Duration time.Duration
	// MaxCells bounds the number of generated cells. Zero means no count
	// bound (Duration must be set).
	MaxCells int
	// CorpusDir, when set, receives one finding-NNN.json per failing cell
	// and a manifest.json summary. The directory is created if missing.
	CorpusDir string
	// ShrinkBudget caps predicate evaluations per finding (0 = default).
	ShrinkBudget int
	// Check tunes the oracle tolerances (zero value = defaults).
	Check CheckOptions
	// Log, when set, receives one progress line per finding and a
	// campaign summary line.
	Log io.Writer
	// Ops, when set, is the live observability plane: every cell gets a
	// span and a heartbeat, so -ops-listen/-progress/-watchdog work for
	// fuzzing campaigns exactly as for sweeps. The fuzz watchdog is
	// dump-only (cells are never cancelled — a half-run oracle battery
	// would report nonsense diffs). Nil disables all of it.
	Ops *obs.Plane
}

// Finding is one failing cell of a campaign, with its shrunk repro.
type Finding struct {
	// Index is the cell's position in the campaign; with CampaignSeed it
	// fully determines the original case.
	Index int `json:"index"`
	// CampaignSeed is the campaign master seed the cell derives from.
	CampaignSeed int64 `json:"campaign_seed"`
	// Oracles lists the distinct violated oracle names.
	Oracles []string `json:"oracles"`
	// Violations are the original cell's oracle failures.
	Violations []Violation `json:"violations"`
	// Case is the generated cell as found.
	Case Case `json:"case"`
	// Shrunk is the minimized repro (still failing the same oracles).
	Shrunk Case `json:"shrunk"`
	// ShrunkViolations are the minimized repro's failures.
	ShrunkViolations []Violation `json:"shrunk_violations"`
	// ShrinkAttempts counts oracle-battery evaluations spent shrinking.
	ShrinkAttempts int `json:"shrink_attempts"`
}

// CampaignResult summarizes one campaign; it is also the schema of the
// corpus directory's manifest.json.
type CampaignResult struct {
	Seed          int64     `json:"seed"`
	Cells         int       `json:"cells"`
	InvalidCells  int       `json:"invalid_cells"`
	Findings      []Finding `json:"findings,omitempty"`
	ElapsedMillis int64     `json:"elapsed_ms"`
}

// Clean reports whether every cell passed every oracle and no generated
// cell was invalid.
func (r CampaignResult) Clean() bool {
	return len(r.Findings) == 0 && r.InvalidCells == 0
}

// CellCase regenerates campaign cell i from the master seed. Campaigns and
// replays share this so finding reports stay replayable by (seed, index).
func CellCase(campaignSeed int64, i int) Case {
	c := Generate(rand.New(rand.NewSource(campaignSeed + int64(i))))
	c.Name = fmt.Sprintf("cell-%d-%d", campaignSeed, i)
	return c
}

func oracleNames(vs []Violation) []string {
	seen := make(map[string]bool)
	var names []string
	for _, v := range vs {
		if !seen[v.Oracle] {
			seen[v.Oracle] = true
			names = append(names, v.Oracle)
		}
	}
	return names
}

// RunCampaign generates and checks cells until the time or count bound is
// hit, shrinking every failing cell to a minimal repro. It returns an
// error only for harness problems (unwritable corpus dir, no bound set);
// oracle failures are data, reported in the result.
func RunCampaign(opts CampaignOptions) (CampaignResult, error) {
	if opts.Duration <= 0 && opts.MaxCells <= 0 {
		return CampaignResult{}, fmt.Errorf("fuzz: campaign needs a duration or a cell-count bound")
	}
	if opts.CorpusDir != "" {
		if err := os.MkdirAll(opts.CorpusDir, 0o755); err != nil {
			return CampaignResult{}, err
		}
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	check := opts.Check
	if check == (CheckOptions{}) {
		check = DefaultCheckOptions()
	}

	res := CampaignResult{Seed: opts.Seed}
	start := time.Now()
	deadline := time.Time{}
	if opts.Duration > 0 {
		deadline = start.Add(opts.Duration)
	}
	for i := 0; ; i++ {
		if opts.MaxCells > 0 && i >= opts.MaxCells {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		c := CellCase(opts.Seed, i)
		res.Cells++
		orun := opts.Ops.BeginRun(c.Name)
		check.Obs = orun
		vs, err := CheckCaseOpts(c, check)
		if err != nil {
			// The generator must only emit valid cells; an invalid one is
			// itself a finding about the generator.
			res.InvalidCells++
			logf("cell %d: INVALID: %v", i, err)
			orun.Done(orun.Heartbeat().Load(), false)
			continue
		}
		if len(vs) == 0 {
			orun.Done(orun.Heartbeat().Load(), true)
			continue
		}
		orun.Span().Annotate("violations", fmt.Sprint(len(vs)))
		oracles := oracleNames(vs)
		logf("cell %d: %d violation(s) [%v], shrinking...", i, len(vs), oracles)
		pred := func(cand Case) bool {
			cvs, err := CheckCaseOpts(cand, check)
			if err != nil {
				return false
			}
			for _, v := range cvs {
				for _, o := range oracles {
					if v.Oracle == o {
						return true
					}
				}
			}
			return false
		}
		shrunk, attempts := Shrink(c, pred, opts.ShrinkBudget)
		svs, _ := CheckCaseOpts(shrunk, check)
		f := Finding{
			Index:            i,
			CampaignSeed:     opts.Seed,
			Oracles:          oracles,
			Violations:       vs,
			Case:             c,
			Shrunk:           shrunk,
			ShrunkViolations: svs,
			ShrinkAttempts:   attempts,
		}
		res.Findings = append(res.Findings, f)
		if opts.CorpusDir != "" {
			if err := writeFinding(opts.CorpusDir, len(res.Findings)-1, f); err != nil {
				return res, err
			}
		}
		logf("cell %d: shrunk in %d attempts -> %s", i, attempts, shrunkSummary(shrunk))
		orun.Done(orun.Heartbeat().Load(), false)
	}
	res.ElapsedMillis = time.Since(start).Milliseconds()
	if opts.CorpusDir != "" {
		if err := writeManifest(opts.CorpusDir, res); err != nil {
			return res, err
		}
	}
	logf("campaign: %d cells in %dms, %d finding(s), %d invalid",
		res.Cells, res.ElapsedMillis, len(res.Findings), res.InvalidCells)
	return res, nil
}

func shrunkSummary(c Case) string {
	data, err := json.Marshal(c)
	if err != nil {
		return err.Error()
	}
	return truncate(string(data), 200)
}

func writeFinding(dir string, n int, f Finding) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, fmt.Sprintf("finding-%03d.json", n)), append(data, '\n'), 0o644)
}

func writeManifest(dir string, res CampaignResult) error {
	// The manifest holds only the summary; per-finding files carry the
	// cases themselves.
	slim := res
	slim.Findings = nil
	type manifest struct {
		CampaignResult
		FindingCount int      `json:"finding_count"`
		Oracles      []string `json:"violated_oracles,omitempty"`
	}
	m := manifest{CampaignResult: slim, FindingCount: len(res.Findings)}
	var all []Violation
	for _, f := range res.Findings {
		all = append(all, f.Violations...)
	}
	m.Oracles = oracleNames(all)
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644)
}
