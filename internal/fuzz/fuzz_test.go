package fuzz

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestGenerateValid: every generated cell must be runnable — the shrinker
// and the campaign both rely on the generator never leaving the valid
// space.
func TestGenerateValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		c := Generate(rand.New(rand.NewSource(seed)))
		if err := c.Validate(); err != nil {
			data, _ := json.Marshal(c)
			t.Fatalf("seed %d generated invalid case: %v\n%s", seed, err, data)
		}
	}
}

// TestGenerateDeterministic: the same source state must always yield the
// same cell, or campaign findings stop being replayable by (seed, index).
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(rand.New(rand.NewSource(seed)))
		b := Generate(rand.New(rand.NewSource(seed)))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestCaseRoundTrip: the replayable JSON must survive a marshal/load
// cycle unchanged — a shrunk repro that loads differently is worthless.
func TestCaseRoundTrip(t *testing.T) {
	c := Generate(rand.New(rand.NewSource(7)))
	data, err := c.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "case.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCase(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip changed the case:\nwant %+v\ngot  %+v", c, got)
	}
}

// TestCaseDefaults: a zero-delta case must materialize the tiny base.
func TestCaseDefaults(t *testing.T) {
	c := Case{Seed: 1, Workload: WorkloadSpec{Buffers: []BufferSpec{{}}}}
	cfg := c.GPUConfig()
	if cfg.SMs != baseSMs || cfg.WarpsPerSM != baseWarps || cfg.Partitions != basePartitions {
		t.Fatalf("base config not applied: %+v", cfg)
	}
	if cfg.MEETune != nil {
		t.Fatal("zero ConfigSpec must not install an MEETune hook")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("tiny base case invalid: %v", err)
	}
	if got := c.SchemeNames(); !reflect.DeepEqual(got, DefaultSchemes) {
		t.Fatalf("default schemes = %v", got)
	}
}

// TestCheckCaseGreen: the oracle battery must pass on a sample of
// generated cells — these are the exact oracles the campaign runs.
func TestCheckCaseGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle battery in -short")
	}
	for seed := int64(0); seed < 4; seed++ {
		c := CellCase(900, int(seed))
		vs, err := CheckCase(c)
		if err != nil {
			t.Fatalf("cell %d invalid: %v", seed, err)
		}
		for _, v := range vs {
			t.Errorf("cell %d: %s", seed, v)
		}
	}
}

// TestCheckCaseGreenUVM runs the battery over hand-picked host-tier
// cells on both sides of the fit boundary: the oversubscribed cells
// push fault/replay/eviction traffic through every equivalence oracle
// (fast-forward, parallel, fork, determinism) plus the
// migration-equivalence oracle's forced ratio-1.0 comparison, across
// both eviction policies and both integrity modes; the 100% cell sits
// exactly on the boundary where the tier must be invisible.
func TestCheckCaseGreenUVM(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle battery in -short")
	}
	cells := []Case{
		{Name: "uvm-lru-rebuild", Seed: 7,
			Config: ConfigSpec{OversubPct: 50, UVMPageKB: 4},
			Workload: WorkloadSpec{Buffers: []BufferSpec{
				{KB: 32, Pattern: "random"}, {KB: 16, WriteFrac: 0.5}}}},
		{Name: "uvm-fifo-hostside", Seed: 8,
			Config: ConfigSpec{OversubPct: 25, UVMPageKB: 4, UVMFIFO: true, UVMHostSide: true},
			Workload: WorkloadSpec{Buffers: []BufferSpec{
				{KB: 48, ReadOnly: true, HostCopied: true}, {KB: 16, WriteFrac: 1.0}}}},
		{Name: "uvm-fit-boundary", Seed: 9,
			Config:   ConfigSpec{OversubPct: 100},
			Workload: WorkloadSpec{Buffers: []BufferSpec{{KB: 32}}}},
	}
	for _, c := range cells {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			vs, err := CheckCase(c)
			if err != nil {
				t.Fatalf("cell invalid: %v", err)
			}
			for _, v := range vs {
				t.Errorf("%s", v)
			}
		})
	}
}

// TestShrinkKnownBad: the acceptance-bar test — a seeded known-bad case
// (a stand-in defect triggered by a random-pattern buffer together with a
// non-default detector window, so the shrinker has real work in both the
// workload and config dimensions) must shrink to the minimal repro,
// deterministically, and the repro must serialize small enough to commit
// (≤ 20 lines of JSON).
func TestShrinkKnownBad(t *testing.T) {
	// A deliberately bloated case that trips the synthetic defect.
	big := Case{
		Name: "bloated",
		Seed: 987654321,
		Config: ConfigSpec{
			SMs: 4, WarpsPerSM: 8, Partitions: 4, L2Banks: 2, L2BankKB: 32,
			L1KB: 8, L1MSHRs: 4, L2MSHRs: 8, XbarQueueDepth: 4, MaxInflight: 16,
			DeviceMemMB: 16, MaxKCycles: 80, DRAMQueueDepth: 4, DRAMBanks: 8,
			MDCacheBytes: 1024, Trackers: 4, WindowAccesses: 33,
			TimeoutCycles: 999, MonitorLead: 8, ROEntries: 8, StreamEntries: 8,
			MEEInputQueue: 8, MEEIssue: 1,
		},
		Workload: WorkloadSpec{
			Kernels: 3, MemInstsPerWarp: 64, ComputePerMem: 8, FrontierWindow: 8,
			RewriteInputs: true, UseResetAPI: true,
			Buffers: []BufferSpec{
				{Name: "a", KB: 256, Pattern: "random", WriteFrac: 0.5, Weight: 2, HostCopied: true},
				{Name: "b", KB: 64, Pattern: "stencil", ReadOnly: true, HostCopied: true},
				{Name: "c", KB: 128, Pattern: "gather", Space: "texture", WriteFrac: 0.2},
			},
		},
		Schemes: []string{"Baseline", "Naive", "PSSM", "SHM", "SHM_cctr"},
	}
	pred := func(c Case) bool {
		if c.Validate() != nil {
			return false
		}
		hasRandom := false
		for _, b := range c.Workload.Buffers {
			hasRandom = hasRandom || b.Pattern == "random"
		}
		return hasRandom && c.Config.WindowAccesses != 0
	}
	if !pred(big) {
		t.Fatal("seed case must fail the predicate")
	}

	min1, attempts1 := Shrink(big, pred, 0)
	min2, attempts2 := Shrink(big, pred, 0)
	if !reflect.DeepEqual(min1, min2) || attempts1 != attempts2 {
		t.Fatalf("shrinking is not deterministic:\n%+v (%d attempts)\n%+v (%d attempts)",
			min1, attempts1, min2, attempts2)
	}
	if !pred(min1) {
		t.Fatal("shrunk case no longer fails the predicate")
	}

	// Minimality: both trigger conditions survive and nothing else does.
	if len(min1.Workload.Buffers) != 1 {
		t.Fatalf("shrunk case keeps %d buffers, want 1: %+v", len(min1.Workload.Buffers), min1)
	}
	if min1.Workload.Buffers[0].Pattern != "random" {
		t.Fatalf("shrunk buffer lost the trigger pattern: %+v", min1.Workload.Buffers[0])
	}
	if min1.Config.WindowAccesses == 0 {
		t.Fatal("shrunk case lost the trigger window")
	}
	zeroed := min1.Config
	zeroed.WindowAccesses = 0
	if zeroed != (ConfigSpec{}) {
		t.Fatalf("shrunk config keeps irrelevant fields: %+v", min1.Config)
	}
	if len(min1.Schemes) != 1 {
		t.Fatalf("shrunk case keeps %d schemes, want 1: %v", len(min1.Schemes), min1.Schemes)
	}
	if min1.Name != "" || min1.Workload.RewriteInputs || min1.Workload.Kernels != 0 {
		t.Fatalf("shrunk case keeps irrelevant workload fields: %+v", min1)
	}

	// Committable size: the acceptance bar is ≤ 20 lines of JSON.
	data, err := min1.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(data, []byte("\n")) + 1; lines > 20 {
		t.Fatalf("shrunk repro is %d lines, want <= 20:\n%s", lines, data)
	}
}

// TestShrinkOracleDriven: shrinking against the real oracle battery, made
// to fail by an impossible tolerance, must stay inside the valid-case
// space and keep failing the same oracle. This exercises the exact
// campaign path (OracleFails over CheckCaseOpts).
func TestShrinkOracleDriven(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle battery in -short")
	}
	c := CellCase(901, 0)
	// A negative metadata tolerance demands SHM move strictly less than
	// an impossible fraction of PSSM's steady metadata, so the
	// metamorphic-metadata oracle fires on (nearly) any cell.
	bad := CheckOptions{IPCTolerance: 0.02, MetaTolerance: -2}
	vs, err := CheckCaseOpts(c, bad)
	if err != nil {
		t.Fatal(err)
	}
	if !hasOracle(vs, "metamorphic-metadata") {
		t.Skip("cell does not trip the strict tolerance; pick another campaign seed")
	}
	pred := func(cand Case) bool {
		cvs, err := CheckCaseOpts(cand, bad)
		return err == nil && hasOracle(cvs, "metamorphic-metadata")
	}
	min1, _ := Shrink(c, pred, 40)
	min2, _ := Shrink(c, pred, 40)
	if !reflect.DeepEqual(min1, min2) {
		t.Fatalf("oracle-driven shrink not deterministic:\n%+v\n%+v", min1, min2)
	}
	if !pred(min1) {
		t.Fatal("shrunk case no longer trips the oracle")
	}
	if err := min1.Validate(); err != nil {
		t.Fatalf("shrunk case left the valid space: %v", err)
	}
	// The metamorphic oracle needs both PSSM and SHM, so the scheme list
	// cannot shrink below those two.
	names := min1.SchemeNames()
	if !contains(names, "PSSM") || !contains(names, "SHM") {
		t.Fatalf("shrunk scheme set %v lost a scheme the oracle needs", names)
	}
}

// TestReproCorpusGreen replays every committed shrunk repro under the
// current oracle battery. Each file in testdata/repros is a cell a past
// campaign flagged; the oracle calibration that resolved it (scheduling
// jitter under 1-deep queues for the IPC ordering, the reset-scan credit
// for the metadata ordering) must keep holding, or the file names exactly
// which regression came back.
func TestReproCorpusGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle battery in -short")
	}
	files, err := filepath.Glob(filepath.Join("testdata", "repros", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("repro corpus is empty")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			c, err := LoadCase(path)
			if err != nil {
				t.Fatal(err)
			}
			vs, err := CheckCase(c)
			if err != nil {
				t.Fatalf("repro no longer valid: %v", err)
			}
			for _, v := range vs {
				t.Errorf("%s", v)
			}
		})
	}
}

func hasOracle(vs []Violation, oracle string) bool {
	for _, v := range vs {
		if v.Oracle == oracle {
			return true
		}
	}
	return false
}

// TestCampaignClean: a tiny bounded campaign must complete, count its
// cells, and write a clean manifest.
func TestCampaignClean(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short")
	}
	dir := t.TempDir()
	var log bytes.Buffer
	res, err := RunCampaign(CampaignOptions{
		Seed:      902,
		MaxCells:  3,
		CorpusDir: dir,
		Log:       &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cells != 3 {
		t.Fatalf("campaign ran %d cells, want 3", res.Cells)
	}
	if !res.Clean() {
		t.Fatalf("campaign not clean: %+v\nlog:\n%s", res, log.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Seed         int64 `json:"seed"`
		Cells        int   `json:"cells"`
		FindingCount int   `json:"finding_count"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Seed != 902 || m.Cells != 3 || m.FindingCount != 0 {
		t.Fatalf("manifest = %+v", m)
	}
}

// TestCampaignNeedsBound: an unbounded campaign must be rejected, not run
// forever.
func TestCampaignNeedsBound(t *testing.T) {
	if _, err := RunCampaign(CampaignOptions{Seed: 1}); err == nil {
		t.Fatal("campaign with no bound must error")
	}
}

// TestViolationString covers both rendering branches.
func TestViolationString(t *testing.T) {
	v := Violation{Oracle: "determinism", Detail: "diverged"}
	if got := v.String(); !strings.Contains(got, "determinism") {
		t.Fatalf("String() = %q", got)
	}
	v.Scheme = "SHM"
	if got := v.String(); !strings.Contains(got, "SHM") {
		t.Fatalf("String() = %q", got)
	}
}

// FuzzWorkloadGen is the native fuzz wrapper over the generator oracle:
// for any seed, generation must be deterministic and emit a valid,
// buildable cell that round-trips through its JSON form.
func FuzzWorkloadGen(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 1 << 20, -7} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		a := Generate(rand.New(rand.NewSource(seed)))
		b := Generate(rand.New(rand.NewSource(seed)))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid case: %v", seed, err)
		}
		data, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		var back Case
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, back) {
			t.Fatalf("seed %d: JSON round trip changed the case", seed)
		}
	})
}

// FuzzDifferentialCell is the native fuzz wrapper over the differential
// oracle battery: any (campaign seed, index) cell must pass every oracle.
func FuzzDifferentialCell(f *testing.F) {
	f.Add(int64(900), 0)
	f.Add(int64(900), 1)
	f.Add(int64(902), 2)
	f.Fuzz(func(t *testing.T, seed int64, index int) {
		if index < 0 {
			index = -index
		}
		c := CellCase(seed, index%1024)
		vs, err := CheckCase(c)
		if err != nil {
			t.Fatalf("generated cell invalid: %v", err)
		}
		for _, v := range vs {
			t.Errorf("%s", v)
		}
	})
}
