package shmgpu_test

import (
	"fmt"
	"testing"

	"shmgpu/internal/testutil"
)

// runMode executes one (workload, scheme, seed) cell with fast-forward either
// enabled (the default) or disabled (reference every-cycle ticking).
func runMode(t *testing.T, workload, scheme string, seed int64, disableFF bool) testutil.Artifacts {
	t.Helper()
	return testutil.RunCell(t, workload, scheme, seed, 0, disableFF)
}

// TestFastForwardMatchesEveryCycle is the event-horizon equivalence gate:
// over a corpus of (workload, scheme, seed) cells, a run with event-horizon
// cycle skipping must be indistinguishable from the every-cycle reference —
// identical Result fields, an identical stats-registry snapshot, and a
// byte-identical telemetry JSONL stream (events, histograms, and the sampled
// timeline included). Any component whose nextEvent under-reports (ticking
// earlier would have had an effect) or whose skipped ticks are not no-ops
// lands here.
func TestFastForwardMatchesEveryCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
	}{
		// Schemes chosen to cover every mechanism the horizon must model:
		// no MEE at all, full metadata traffic, sectored+local metadata,
		// RO-counter transitions, dual-granularity MACs with MAT trackers,
		// and the combined SHM design.
		{"atax", "Baseline", 1},
		{"atax", "Naive", 1},
		{"atax", "PSSM", 1},
		{"atax", "SHM", 1},
		{"bfs", "SHM", 2},
		{"fdtd2d", "SHM_readOnly", 3},
		{"mvt", "Common_ctr", 4},
		{"streamcluster", "SHM", 5},
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("%s_%s_seed%d", c.workload, c.scheme, c.seed), func(t *testing.T) {
			ff := runMode(t, c.workload, c.scheme, c.seed, false)
			ref := runMode(t, c.workload, c.scheme, c.seed, true)
			testutil.AssertEqual(t, "fast-forward", ff, "every-cycle", ref)
		})
	}
}

// TestFastForwardMatchesEveryCycleOversubscribed extends the horizon gate
// to the UVM host tier: with the working set oversubscribed, in-flight
// page migrations join the event horizon (hostmem.Tier.NextEvent) and the
// fault/replay retries must land on identical cycles in both modes. The
// prefetch cells additionally pin migration-ahead state — fault streams,
// batched transfers, eager evictions — against cycle skipping: a prefetch
// issued on a skipped-to cycle must land exactly where every-cycle
// ticking would put it.
func TestFastForwardMatchesEveryCycleOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		scheme   string
		prefetch string
	}{
		{"Baseline", ""},
		{"SHM", ""},
		{"SHM", "stride"},
		{"SHM", "stream"},
	}
	for _, c := range cells {
		c := c
		name := c.scheme
		if c.prefetch != "" {
			name += "_" + c.prefetch
		}
		t.Run(name, func(t *testing.T) {
			cfg := oversubQuickConfig(0.5)
			cfg.UVMPrefetch = c.prefetch
			ff := testutil.RunCellCfg(t, cfg, "atax", c.scheme, 1)
			cfg.DisableFastForward = true
			ref := testutil.RunCellCfg(t, cfg, "atax", c.scheme, 1)
			testutil.AssertEqual(t, "fast-forward", ff, "every-cycle", ref)
		})
	}
}
