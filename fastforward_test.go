package shmgpu_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"shmgpu"
	"shmgpu/internal/telemetry"
)

// ffArtifacts is everything observable about one run: the full Result
// struct, the marshaled stats registry, and the JSONL telemetry stream.
type ffArtifacts struct {
	result   string
	snapshot []byte
	jsonl    []byte
}

// runMode executes one (workload, scheme, seed) cell with fast-forward either
// enabled (the default) or disabled (reference every-cycle ticking).
func runMode(t *testing.T, workload, scheme string, seed int64, disableFF bool) ffArtifacts {
	t.Helper()
	return runCell(t, workload, scheme, seed, 0, disableFF)
}

// runCell executes one quick-config cell with the given shard count (0 =
// sequential) and fast-forward mode; it is the shared artifact collector
// behind the fast-forward and parallel equivalence corpora.
func runCell(t *testing.T, workload, scheme string, seed int64, shards int, disableFF bool) ffArtifacts {
	t.Helper()
	cfg := shmgpu.QuickConfig()
	cfg.DisableFastForward = disableFF
	cfg.ParallelShards = shards
	tcfg := shmgpu.TelemetryConfig{SampleInterval: 500, CaptureEvents: true}
	res, col, err := shmgpu.RunWithTelemetrySeeded(cfg, workload, scheme, seed, tcfg)
	if err != nil {
		t.Fatalf("run %s/%s seed %d (disableFF=%v): %v", workload, scheme, seed, disableFF, err)
	}
	snap, err := json.Marshal(res.Reg.Snapshot())
	if err != nil {
		t.Fatalf("marshaling snapshot: %v", err)
	}
	m := shmgpu.Manifest{
		Tool:          "fastforward-test",
		SchemaVersion: telemetry.SchemaVersion,
		Workload:      workload,
		Scheme:        scheme,
		SMs:           cfg.SMs,
		Partitions:    cfg.Partitions,
		Seed:          seed,
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, col, shmgpu.Summarize(res), m); err != nil {
		t.Fatalf("writing JSONL: %v", err)
	}
	// Result carries the registry pointer; render the value fields instead.
	return ffArtifacts{
		result: fmt.Sprintf(
			"cycles=%d insts=%d traffic=%+v l1=%+v l2=%+v ctr=%+v mac=%+v bmt=%+v ro=%+v stream=%+v bus=%.9f victim=%d/%d completed=%v",
			res.Cycles, res.Instructions, res.Traffic, res.L1, res.L2,
			res.Ctr, res.MAC, res.BMT, res.ROAccuracy, res.StreamAccuracy,
			res.BusUtilization, res.VictimHits, res.VictimPushes, res.Completed),
		snapshot: snap,
		jsonl:    buf.Bytes(),
	}
}

// TestFastForwardMatchesEveryCycle is the event-horizon equivalence gate:
// over a corpus of (workload, scheme, seed) cells, a run with event-horizon
// cycle skipping must be indistinguishable from the every-cycle reference —
// identical Result fields, an identical stats-registry snapshot, and a
// byte-identical telemetry JSONL stream (events, histograms, and the sampled
// timeline included). Any component whose nextEvent under-reports (ticking
// earlier would have had an effect) or whose skipped ticks are not no-ops
// lands here.
func TestFastForwardMatchesEveryCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
	}{
		// Schemes chosen to cover every mechanism the horizon must model:
		// no MEE at all, full metadata traffic, sectored+local metadata,
		// RO-counter transitions, dual-granularity MACs with MAT trackers,
		// and the combined SHM design.
		{"atax", "Baseline", 1},
		{"atax", "Naive", 1},
		{"atax", "PSSM", 1},
		{"atax", "SHM", 1},
		{"bfs", "SHM", 2},
		{"fdtd2d", "SHM_readOnly", 3},
		{"mvt", "Common_ctr", 4},
		{"streamcluster", "SHM", 5},
	}
	for _, c := range cells {
		c := c
		t.Run(fmt.Sprintf("%s_%s_seed%d", c.workload, c.scheme, c.seed), func(t *testing.T) {
			ff := runMode(t, c.workload, c.scheme, c.seed, false)
			ref := runMode(t, c.workload, c.scheme, c.seed, true)
			if ff.result != ref.result {
				t.Errorf("Result diverges:\nfast-forward: %s\nevery-cycle:  %s", ff.result, ref.result)
			}
			if !bytes.Equal(ff.snapshot, ref.snapshot) {
				t.Errorf("stats snapshots diverge:\nfast-forward: %s\nevery-cycle:  %s", ff.snapshot, ref.snapshot)
			}
			if !bytes.Equal(ff.jsonl, ref.jsonl) {
				t.Errorf("telemetry JSONL diverges (%d vs %d bytes)", len(ff.jsonl), len(ref.jsonl))
			}
		})
	}
}
