package shmgpu_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"shmgpu"
	"shmgpu/internal/testutil"
)

// forkSpecsFor builds the child variants one warmed parent fans out to:
// the sequential engine in both fast-forward modes plus the cell's shard
// counts (fast-forward on, matching the parallel corpus).
func forkSpecsFor(shards []int) []shmgpu.ForkSpec {
	specs := []shmgpu.ForkSpec{
		{Shards: 0, DisableFastForward: false},
		{Shards: 0, DisableFastForward: true},
	}
	for _, s := range shards {
		specs = append(specs, shmgpu.ForkSpec{Shards: s, DisableFastForward: false})
	}
	return specs
}

// TestForkMatchesScratch is the checkpoint/fork equivalence gate: over the
// parallel corpus's cells, a run forked from a warmed parent's snapshot
// must be byte-indistinguishable from the same configuration run from
// scratch — identical Result fields, stats-registry snapshot, and
// telemetry JSONL — for every child variant, with the fork point both
// early (a warmup boundary) and deep in steady state. Any simulator state
// the snapshot fails to capture, or captures approximately, lands here.
func TestForkMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
		shards   []int
	}{
		{"atax", "Baseline", 1, []int{1, 4}},
		{"atax", "SHM", 1, []int{4}},
		{"bfs", "SHM", 2, []int{2}},
		{"fdtd2d", "SHM_readOnly", 3, []int{4}},
		{"mvt", "Common_ctr", 4, []int{4}},
	}
	for _, c := range cells {
		c := c
		// One probe run sizes the fork points; its cycle count is
		// deterministic, so the fractions below land at reproducible spots.
		probe, err := shmgpu.RunSeeded(shmgpu.QuickConfig(), c.workload, c.scheme, c.seed)
		if err != nil {
			t.Fatalf("probe run %s/%s: %v", c.workload, c.scheme, err)
		}
		warmPoints := []struct {
			name string
			at   uint64
		}{
			{"warmup", probe.Cycles / 8},
			{"steady", probe.Cycles / 2},
		}
		specs := forkSpecsFor(c.shards)
		for _, wp := range warmPoints {
			wp := wp
			if wp.at == 0 {
				continue
			}
			t.Run(fmt.Sprintf("%s_%s_seed%d_%s", c.workload, c.scheme, c.seed, wp.name), func(t *testing.T) {
				results, cols, err := shmgpu.RunForkedSeeded(shmgpu.QuickConfig(), c.workload, c.scheme, c.seed, wp.at, testutil.QuickTelemetry(), specs)
				if err != nil {
					t.Fatalf("forked run: %v", err)
				}
				for i, spec := range specs {
					forked := testutil.Collect(t, shmgpu.QuickConfig(), c.workload, c.scheme, c.seed, results[i], cols[i])
					scratch := testutil.RunCell(t, c.workload, c.scheme, c.seed, spec.Shards, spec.DisableFastForward)
					label := fmt.Sprintf("forked shards=%d ff=%v", spec.Shards, !spec.DisableFastForward)
					testutil.AssertEqual(t, label, forked, "scratch", scratch)
				}
			})
		}
	}
}

// TestForkMatchesScratchOversubscribed pins the snapshot engine against
// the UVM host tier: forking a warmed oversubscribed parent — including
// at an early point where the migration ring is typically mid-transfer —
// must reproduce the scratch run byte-for-byte. (Deterministic coverage
// of serializing a non-empty migration ring lives in the hostmem unit
// tests; here the fork points sample whatever in-flight state the real
// run has at those cycles.) The stream-prefetch variant forks with
// migration-ahead state live — fault-stream stride tables, prefetch
// page states, eager-eviction stamps, and possibly a multi-page batch
// mid-transfer — all of which must survive the snapshot round-trip.
func TestForkMatchesScratchOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	for _, prefetch := range []string{"", "stream"} {
		prefetch := prefetch
		name := "demand"
		if prefetch != "" {
			name = prefetch
		}
		t.Run(name, func(t *testing.T) {
			cfg := oversubQuickConfig(0.5)
			cfg.UVMPrefetch = prefetch
			probe, err := shmgpu.RunSeeded(cfg, "atax", "SHM", 1)
			if err != nil {
				t.Fatalf("probe run: %v", err)
			}
			specs := forkSpecsFor([]int{4})
			for _, frac := range []struct {
				name string
				at   uint64
			}{
				{"early", probe.Cycles / 16},
				{"steady", probe.Cycles / 2},
			} {
				frac := frac
				if frac.at == 0 {
					continue
				}
				t.Run(frac.name, func(t *testing.T) {
					results, cols, err := shmgpu.RunForkedSeeded(cfg, "atax", "SHM", 1, frac.at, testutil.QuickTelemetry(), specs)
					if err != nil {
						t.Fatalf("forked run: %v", err)
					}
					for i, spec := range specs {
						scfg := cfg
						scfg.ParallelShards = spec.Shards
						scfg.DisableFastForward = spec.DisableFastForward
						forked := testutil.Collect(t, cfg, "atax", "SHM", 1, results[i], cols[i])
						scratch := testutil.RunCellCfg(t, scfg, "atax", "SHM", 1)
						label := fmt.Sprintf("forked shards=%d ff=%v", spec.Shards, !spec.DisableFastForward)
						testutil.AssertEqual(t, label, forked, "scratch", scratch)
					}
				})
			}
		})
	}
}

// TestSnapshotFileRoundTrip pins the file-based warm/restore path shmsim
// exposes: a snapshot written to disk restores into a byte-identical
// completion, and restoring under a mismatched scheme or seed is rejected
// by the configuration fingerprint rather than silently diverging.
func TestSnapshotFileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	cfg := shmgpu.QuickConfig()
	tcfg := testutil.QuickTelemetry()
	probe, err := shmgpu.RunSeeded(cfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.snap")
	written, err := shmgpu.WriteSnapshot(cfg, "atax", "SHM", 1, probe.Cycles/2, tcfg, path)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if !written {
		t.Fatalf("workload finished before cycle %d; nothing captured", probe.Cycles/2)
	}

	res, col, err := shmgpu.RestoreRun(cfg, "atax", "SHM", 1, tcfg, path)
	if err != nil {
		t.Fatalf("RestoreRun: %v", err)
	}
	restored := testutil.Collect(t, cfg, "atax", "SHM", 1, res, col)
	scratch := testutil.RunCell(t, "atax", "SHM", 1, 0, false)
	testutil.AssertEqual(t, "restored", restored, "scratch", scratch)

	if _, _, err := shmgpu.RestoreRun(cfg, "atax", "PSSM", 1, tcfg, path); err == nil {
		t.Error("restoring under a different scheme succeeded; want fingerprint rejection")
	}
	if _, _, err := shmgpu.RestoreRun(cfg, "atax", "SHM", 99, tcfg, path); err == nil {
		t.Error("restoring under a different seed succeeded; want fingerprint rejection")
	}
	bigger := cfg
	bigger.SMs++
	if _, _, err := shmgpu.RestoreRun(bigger, "atax", "SHM", 1, tcfg, path); err == nil {
		t.Error("restoring under a different GPU config succeeded; want fingerprint rejection")
	}
}

// TestSnapshotRejectsPageSizeMismatch extends the fingerprint gate to the
// UVM axis: a snapshot taken under one page size (or oversubscription
// ratio) must not restore under another — residency bitmaps and the
// migration ring are meaningless across page geometries.
func TestSnapshotRejectsPageSizeMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	cfg := oversubQuickConfig(0.5)
	tcfg := testutil.QuickTelemetry()
	probe, err := shmgpu.RunSeeded(cfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "uvm.snap")
	written, err := shmgpu.WriteSnapshot(cfg, "atax", "SHM", 1, probe.Cycles/2, tcfg, path)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if !written {
		t.Fatalf("workload finished before cycle %d; nothing captured", probe.Cycles/2)
	}

	smaller := cfg
	smaller.UVMPageBytes = 32 << 10
	if _, _, err := shmgpu.RestoreRun(smaller, "atax", "SHM", 1, tcfg, path); err == nil {
		t.Error("restoring under a different page size succeeded; want fingerprint rejection")
	}
	tighter := cfg
	tighter.OversubRatio = 0.25
	if _, _, err := shmgpu.RestoreRun(tighter, "atax", "SHM", 1, tcfg, path); err == nil {
		t.Error("restoring under a different oversubscription ratio succeeded; want fingerprint rejection")
	}

	// Sanity: the matching configuration still restores and completes
	// byte-identically to scratch.
	res, col, err := shmgpu.RestoreRun(cfg, "atax", "SHM", 1, tcfg, path)
	if err != nil {
		t.Fatalf("RestoreRun: %v", err)
	}
	restored := testutil.Collect(t, cfg, "atax", "SHM", 1, res, col)
	scratch := testutil.RunCellCfg(t, cfg, "atax", "SHM", 1)
	testutil.AssertEqual(t, "restored", restored, "scratch", scratch)
}
