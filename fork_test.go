package shmgpu_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"shmgpu"
	"shmgpu/internal/telemetry"
)

// forkSpecsFor builds the child variants one warmed parent fans out to:
// the sequential engine in both fast-forward modes plus the cell's shard
// counts (fast-forward on, matching the parallel corpus).
func forkSpecsFor(shards []int) []shmgpu.ForkSpec {
	specs := []shmgpu.ForkSpec{
		{Shards: 0, DisableFastForward: false},
		{Shards: 0, DisableFastForward: true},
	}
	for _, s := range shards {
		specs = append(specs, shmgpu.ForkSpec{Shards: s, DisableFastForward: false})
	}
	return specs
}

// forkArtifacts renders one forked child's run in the same byte-comparable
// form runCell uses for scratch runs, so the two sides diff directly.
func forkArtifacts(t *testing.T, workload, scheme string, seed int64, res shmgpu.Result, col *shmgpu.Collector, spec shmgpu.ForkSpec) ffArtifacts {
	t.Helper()
	cfg := shmgpu.QuickConfig()
	snap, err := json.Marshal(res.Reg.Snapshot())
	if err != nil {
		t.Fatalf("marshaling snapshot: %v", err)
	}
	m := shmgpu.Manifest{
		Tool:          "fastforward-test",
		SchemaVersion: telemetry.SchemaVersion,
		Workload:      workload,
		Scheme:        scheme,
		SMs:           cfg.SMs,
		Partitions:    cfg.Partitions,
		Seed:          seed,
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, col, shmgpu.Summarize(res), m); err != nil {
		t.Fatalf("writing JSONL: %v", err)
	}
	return ffArtifacts{
		result: fmt.Sprintf(
			"cycles=%d insts=%d traffic=%+v l1=%+v l2=%+v ctr=%+v mac=%+v bmt=%+v ro=%+v stream=%+v bus=%.9f victim=%d/%d completed=%v",
			res.Cycles, res.Instructions, res.Traffic, res.L1, res.L2,
			res.Ctr, res.MAC, res.BMT, res.ROAccuracy, res.StreamAccuracy,
			res.BusUtilization, res.VictimHits, res.VictimPushes, res.Completed),
		snapshot: snap,
		jsonl:    buf.Bytes(),
	}
}

// TestForkMatchesScratch is the checkpoint/fork equivalence gate: over the
// parallel corpus's cells, a run forked from a warmed parent's snapshot
// must be byte-indistinguishable from the same configuration run from
// scratch — identical Result fields, stats-registry snapshot, and
// telemetry JSONL — for every child variant, with the fork point both
// early (a warmup boundary) and deep in steady state. Any simulator state
// the snapshot fails to capture, or captures approximately, lands here.
func TestForkMatchesScratch(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus of full simulations; skipped in -short")
	}
	cells := []struct {
		workload string
		scheme   string
		seed     int64
		shards   []int
	}{
		{"atax", "Baseline", 1, []int{1, 4}},
		{"atax", "SHM", 1, []int{4}},
		{"bfs", "SHM", 2, []int{2}},
		{"fdtd2d", "SHM_readOnly", 3, []int{4}},
		{"mvt", "Common_ctr", 4, []int{4}},
	}
	tcfg := shmgpu.TelemetryConfig{SampleInterval: 500, CaptureEvents: true}
	for _, c := range cells {
		c := c
		// One probe run sizes the fork points; its cycle count is
		// deterministic, so the fractions below land at reproducible spots.
		probe, err := shmgpu.RunSeeded(shmgpu.QuickConfig(), c.workload, c.scheme, c.seed)
		if err != nil {
			t.Fatalf("probe run %s/%s: %v", c.workload, c.scheme, err)
		}
		warmPoints := []struct {
			name string
			at   uint64
		}{
			{"warmup", probe.Cycles / 8},
			{"steady", probe.Cycles / 2},
		}
		specs := forkSpecsFor(c.shards)
		for _, wp := range warmPoints {
			wp := wp
			if wp.at == 0 {
				continue
			}
			t.Run(fmt.Sprintf("%s_%s_seed%d_%s", c.workload, c.scheme, c.seed, wp.name), func(t *testing.T) {
				results, cols, err := shmgpu.RunForkedSeeded(shmgpu.QuickConfig(), c.workload, c.scheme, c.seed, wp.at, tcfg, specs)
				if err != nil {
					t.Fatalf("forked run: %v", err)
				}
				for i, spec := range specs {
					forked := forkArtifacts(t, c.workload, c.scheme, c.seed, results[i], cols[i], spec)
					scratch := runCell(t, c.workload, c.scheme, c.seed, spec.Shards, spec.DisableFastForward)
					label := fmt.Sprintf("shards=%d ff=%v", spec.Shards, !spec.DisableFastForward)
					if forked.result != scratch.result {
						t.Errorf("[%s] Result diverges:\nforked:  %s\nscratch: %s", label, forked.result, scratch.result)
					}
					if !bytes.Equal(forked.snapshot, scratch.snapshot) {
						t.Errorf("[%s] stats snapshots diverge:\nforked:  %s\nscratch: %s", label, forked.snapshot, scratch.snapshot)
					}
					if !bytes.Equal(forked.jsonl, scratch.jsonl) {
						t.Errorf("[%s] telemetry JSONL diverges (%d vs %d bytes)", label, len(forked.jsonl), len(scratch.jsonl))
					}
				}
			})
		}
	}
}

// TestSnapshotFileRoundTrip pins the file-based warm/restore path shmsim
// exposes: a snapshot written to disk restores into a byte-identical
// completion, and restoring under a mismatched scheme or seed is rejected
// by the configuration fingerprint rather than silently diverging.
func TestSnapshotFileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	cfg := shmgpu.QuickConfig()
	tcfg := shmgpu.TelemetryConfig{SampleInterval: 500, CaptureEvents: true}
	probe, err := shmgpu.RunSeeded(cfg, "atax", "SHM", 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.snap")
	written, err := shmgpu.WriteSnapshot(cfg, "atax", "SHM", 1, probe.Cycles/2, tcfg, path)
	if err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if !written {
		t.Fatalf("workload finished before cycle %d; nothing captured", probe.Cycles/2)
	}

	res, col, err := shmgpu.RestoreRun(cfg, "atax", "SHM", 1, tcfg, path)
	if err != nil {
		t.Fatalf("RestoreRun: %v", err)
	}
	restored := forkArtifacts(t, "atax", "SHM", 1, res, col, shmgpu.ForkSpec{})
	scratch := runCell(t, "atax", "SHM", 1, 0, false)
	if restored.result != scratch.result {
		t.Errorf("Result diverges:\nrestored: %s\nscratch:  %s", restored.result, scratch.result)
	}
	if !bytes.Equal(restored.jsonl, scratch.jsonl) {
		t.Errorf("telemetry JSONL diverges (%d vs %d bytes)", len(restored.jsonl), len(scratch.jsonl))
	}

	if _, _, err := shmgpu.RestoreRun(cfg, "atax", "PSSM", 1, tcfg, path); err == nil {
		t.Error("restoring under a different scheme succeeded; want fingerprint rejection")
	}
	if _, _, err := shmgpu.RestoreRun(cfg, "atax", "SHM", 99, tcfg, path); err == nil {
		t.Error("restoring under a different seed succeeded; want fingerprint rejection")
	}
	bigger := cfg
	bigger.SMs++
	if _, _, err := shmgpu.RestoreRun(bigger, "atax", "SHM", 1, tcfg, path); err == nil {
		t.Error("restoring under a different GPU config succeeded; want fingerprint rejection")
	}
}
